(** Columnar extent storage: one flat unboxed array per attribute, a
    presence bitset per column, and the extent's columnar signature store.

    The extent still owns the boxed row handles ([{!Dbobject.t}]) — they
    remain the identity that GOid tables, blocking points and answers carry
    — but attribute values are mirrored into typed columns ([int array],
    flat [float array], [string array], [Bytes.t] bools, [int array]
    LOids) so whole-extent predicate evaluation ({!eval_attr}) and BLS/PLS
    signature filtering ({!signatures}) run as tight loops over contiguous
    data instead of per-object hashtable probes. docs/PERFORMANCE.md walks
    the layout and its measured effect. *)

type t

val create : schema:Schema.t -> cls:string -> t
(** An empty extent for [cls], with one typed column per attribute of the
    class definition. Raises [Invalid_argument] on an unknown class. *)

val append : t -> Dbobject.t -> int
(** Appends one row: stores the handle, scatters the fields into the
    columns (nulls leave the presence bit clear), feeds the signature
    store, and returns the row index. Raises [Invalid_argument] when the
    object's class or arity does not match — {!Database.add} has already
    validated the field types. *)

val cls : t -> string

val size : t -> int

val handle : t -> int -> Dbobject.t
(** The boxed row handle at a row index. Raises [Invalid_argument] out of
    range. *)

val to_list : t -> Dbobject.t list
(** All handles in insertion order — the compatibility view behind
    {!Database.extent}. *)

val iter : (Dbobject.t -> unit) -> t -> unit
(** Iterates the handles in insertion order without building a list. *)

val signatures : t -> Sigset.t
(** The extent's columnar signature store, maintained on {!append}; row
    indices agree with the extent's. *)

(** {2 Columnar predicate evaluation} *)

type verdict =
  | V_sat  (** value present, predicate satisfied *)
  | V_viol  (** value present, predicate violated *)
  | V_null  (** blocked: the attribute holds [Null] *)
  | V_missing  (** blocked: the class does not define the attribute *)

val verdict : Bytes.t -> int -> verdict
(** Decodes row [r] of an {!eval_attr} result. *)

val eval_attr :
  ?meter:Meter.t ->
  t ->
  attr:string ->
  op:Relop.t ->
  operand:Value.t ->
  Bytes.t option
(** Evaluates the one-step predicate [attr op operand] over every row in
    one typed loop; [Some codes] holds one {!verdict} byte per row.
    [None] means only the per-object walk reproduces the exact semantics
    (an ordering comparison against a column of a different type raises
    [Value.Type_error] at the first non-null row) — the caller falls back
    to {!Predicate.eval} and nothing has been charged to the meter. On
    [Some], the meter is charged identically to the per-object walk: one
    access per row, one comparison per non-null row. *)
