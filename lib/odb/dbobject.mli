(** Object instances of a component database.

    Fields are stored positionally, aligned with the attribute order of the
    object's class definition. *)

type t = private { loid : Oid.Loid.t; cls : string; fields : Value.t array }

val make : loid:Oid.Loid.t -> cls:string -> fields:Value.t array -> t

val loid : t -> Oid.Loid.t

val cls : t -> string

val field : t -> int -> Value.t
(** Raises [Invalid_argument] when the index is out of range. *)

val fields : t -> Value.t list

val has_null : t -> bool
(** Whether any field holds [Null] — i.e. the object contributes null-value
    missing data. *)

val pp : Format.formatter -> t -> unit
