type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Ref of Oid.Loid.t

exception Type_error of string

let is_null = function Null -> true | Int _ | Float _ | Str _ | Bool _ | Ref _ -> false

let equal a b =
  match (a, b) with
  | Null, Null -> true
  | Int x, Int y -> Int.equal x y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | Ref x, Ref y -> Oid.Loid.equal x y
  | (Null | Int _ | Float _ | Str _ | Bool _ | Ref _), _ -> false

let type_name = function
  | Null -> "null"
  | Int _ -> "int"
  | Float _ -> "float"
  | Str _ -> "string"
  | Bool _ -> "bool"
  | Ref _ -> "ref"

let type_error a b op =
  raise
    (Type_error
       (Printf.sprintf "cannot %s values of type %s and %s" op (type_name a)
          (type_name b)))

let compare_values a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | (Null | Int _ | Float _ | Str _ | Bool _ | Ref _), _ -> type_error a b "order"

let to_string = function
  | Null -> "-"
  | Int i -> string_of_int i
  | Float f ->
    (* keep a decimal marker so printed floats re-parse as floats *)
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else Printf.sprintf "%g" f
  | Str s -> s
  | Bool b -> string_of_bool b
  | Ref l -> Oid.Loid.to_string l

let pp ppf v = Format.pp_print_string ppf (to_string v)
