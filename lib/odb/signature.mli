(** Object signatures (the paper's future-work auxiliary structure).

    A signature is a compact per-attribute digest of an object's primitive
    values. Before shipping an assistant-object check request to a remote
    database, a localized strategy can test the request's equality
    predicates against the locally replicated signature: a mismatching
    digest proves the assistant cannot satisfy the predicate, so the request
    (and its round trip) is skipped. Signatures never produce false
    negatives — {!may_satisfy} returning [false] is definitive — but may
    produce false positives, whose rate the paper models with the
    selectivity [R_ss].

    Only equality predicates on primitive attributes are filterable; every
    other shape conservatively answers [true]. *)

type t

val of_object : Dbobject.t -> t
(** Digest of every primitive non-null field; null, missing and complex
    fields have no digest slot. *)

val may_satisfy : t -> index:int -> op:Relop.t -> operand:Value.t -> bool
(** Whether the object behind this signature could satisfy
    [attr op operand], where [index] is the attribute's field position in
    its class (signatures are positional). An out-of-range index answers
    [true] (no filtering). *)

val size_bytes : int
(** Wire/storage size of one signature: the paper's [S_s] = 32 bytes. *)

val max_slots : int
(** Digest slots per signature (16): fields past this position are never
    digested, matching {!size_bytes} at 16 bits per slot. *)

val digest_value : Value.t -> int option
(** The digest of a primitive non-null value; [None] otherwise. Exposed for
    testing the no-false-negative property. *)
