(* A signature stores one 16-bit digest per attribute slot (-1 = no digest).
   With the paper's S_s = 32 bytes a signature covers up to 16 attributes;
   generated classes stay well under that. *)

type t = int array

let size_bytes = 32
let max_slots = size_bytes / 2

let digest_value = function
  | Value.Null | Value.Ref _ -> None
  | (Value.Int _ | Value.Float _ | Value.Str _ | Value.Bool _) as v ->
    Some (Hashtbl.hash v land 0xFFFF)

let of_object obj =
  let fields = Dbobject.fields obj in
  let n = min (List.length fields) max_slots in
  let sig_ = Array.make n (-1) in
  List.iteri
    (fun i v ->
      if i < n then
        match digest_value v with Some d -> sig_.(i) <- d | None -> ())
    fields;
  sig_

let may_satisfy t ~index ~op ~operand =
  match op with
  | Relop.Ne | Relop.Lt | Relop.Le | Relop.Gt | Relop.Ge ->
    true
  | Relop.Eq -> (
    if index < 0 || index >= Array.length t then true
    else if t.(index) < 0 then true (* no digest: null or complex *)
    else
      match digest_value operand with
      | None -> true
      | Some d -> t.(index) = d)
