(* Columnar extent storage: one flat unboxed array per attribute.

   A class's extent keeps, besides the row handles ([Dbobject.t], still
   the identity used by GOid tables, blocking points and answers), one
   typed column per attribute — [int array], [float array] (flat, no
   per-element boxing), [string array], [Bytes.t] for bools, and an
   [int array] of LOids for references — plus a presence bitset per column
   (bit r set iff row r is non-null) and the extent's columnar signature
   store ([Sigset], maintained incrementally on append).

   [eval_attr] is the point of the representation: evaluating a one-step
   predicate over the whole extent as one tight loop over contiguous data.
   The boxed path ([Predicate.eval] per object) pays two string-hashing
   hashtable probes ([Schema.attr_index]) plus a constructor dispatch per
   object per atom; here the attribute resolves once and each row costs an
   array load, a bit test and an unboxed compare. Answers and meter totals
   are identical by construction: 1 access per object per atom, 1
   comparison iff the value is present — exactly what the per-object walk
   charges — with golden tests and the qcheck properties pinning the
   bytes. *)

type data =
  | D_int of int array
  | D_float of float array  (* flat float array: unboxed elements *)
  | D_str of string array
  | D_bool of Bytes.t
  | D_ref of int array  (* LOid as int *)

type column = {
  ctype : Schema.attr_type;
  mutable data : data;
  present : Bitset.t;  (* bit r set iff row r non-null *)
}

type t = {
  cls : string;
  slots : (string, int) Hashtbl.t;  (* attr name -> column index *)
  cols : column array;
  sigs : Sigset.t;
  mutable n : int;
  mutable cap : int;
  mutable objs : Dbobject.t array;
}

let create ~schema ~cls =
  let cd =
    match Schema.find_class schema cls with
    | Some cd -> cd
    | None -> invalid_arg (Printf.sprintf "Extent.create: unknown class %s" cls)
  in
  let attrs = Array.of_list cd.Schema.attrs in
  let slots = Hashtbl.create (max 4 (Array.length attrs)) in
  Array.iteri (fun i a -> Hashtbl.replace slots a.Schema.aname i) attrs;
  let column a =
    let data =
      match a.Schema.atype with
      | Schema.Prim Schema.P_int -> D_int [||]
      | Schema.Prim Schema.P_float -> D_float [||]
      | Schema.Prim Schema.P_string -> D_str [||]
      | Schema.Prim Schema.P_bool -> D_bool Bytes.empty
      | Schema.Complex _ -> D_ref [||]
    in
    { ctype = a.Schema.atype; data; present = Bitset.create 64 }
  in
  {
    cls;
    slots;
    cols = Array.map column attrs;
    sigs = Sigset.create ~arity:(Array.length attrs) ();
    n = 0;
    cap = 0;
    objs = [||];
  }

let cls t = t.cls
let size t = t.n
let signatures t = t.sigs

let handle t r =
  if r < 0 || r >= t.n then
    invalid_arg (Printf.sprintf "Extent.handle: row %d out of range" r)
  else t.objs.(r)

let iter f t =
  for r = 0 to t.n - 1 do
    f t.objs.(r)
  done

let to_list t =
  let rec go r acc = if r < 0 then acc else go (r - 1) (t.objs.(r) :: acc) in
  go (t.n - 1) []

let grow_data cap = function
  | D_int a ->
    let b = Array.make cap 0 in
    Array.blit a 0 b 0 (Array.length a);
    D_int b
  | D_float a ->
    let b = Array.make cap 0.0 in
    Array.blit a 0 b 0 (Array.length a);
    D_float b
  | D_str a ->
    let b = Array.make cap "" in
    Array.blit a 0 b 0 (Array.length a);
    D_str b
  | D_bool a ->
    let b = Bytes.make cap '\000' in
    Bytes.blit a 0 b 0 (Bytes.length a);
    D_bool b
  | D_ref a ->
    let b = Array.make cap (-1) in
    Array.blit a 0 b 0 (Array.length a);
    D_ref b

let grow t obj =
  let cap = if t.cap = 0 then 16 else 2 * t.cap in
  let objs = Array.make cap obj in
  Array.blit t.objs 0 objs 0 t.n;
  t.objs <- objs;
  Array.iter (fun c -> c.data <- grow_data cap c.data) t.cols;
  t.cap <- cap

let append t obj =
  if not (String.equal (Dbobject.cls obj) t.cls) then
    invalid_arg
      (Printf.sprintf "Extent.append: %s object into %s extent"
         (Dbobject.cls obj) t.cls);
  let fields = obj.Dbobject.fields in
  if Array.length fields <> Array.length t.cols then
    invalid_arg "Extent.append: field count does not match the class arity";
  if t.n = t.cap then grow t obj;
  let r = t.n in
  t.objs.(r) <- obj;
  Array.iteri
    (fun i col ->
      match fields.(i) with
      | Value.Null -> ()  (* presence bit stays clear *)
      | v -> (
        Bitset.set col.present r;
        match (col.data, v) with
        | D_int a, Value.Int x -> a.(r) <- x
        | D_float a, Value.Float x -> a.(r) <- x
        | D_str a, Value.Str x -> a.(r) <- x
        | D_bool a, Value.Bool x -> Bytes.set a r (if x then '\001' else '\000')
        | D_ref a, Value.Ref l -> a.(r) <- Oid.Loid.to_int l
        | (D_int _ | D_float _ | D_str _ | D_bool _ | D_ref _), _ ->
          invalid_arg
            (Printf.sprintf "Extent.append: attribute %d of %s cannot hold a %s"
               i t.cls (Value.type_name v))))
    t.cols;
  ignore (Sigset.append t.sigs fields);
  t.n <- r + 1;
  r

(* ---- columnar predicate evaluation ---- *)

type verdict = V_sat | V_viol | V_null | V_missing

let c_sat = '\000'
let c_viol = '\001'
let c_null = '\002'
let c_missing = '\003'

let verdict codes r =
  match Bytes.get codes r with
  | '\000' -> V_sat
  | '\001' -> V_viol
  | '\002' -> V_null
  | _ -> V_missing

let tick_accesses meter n =
  match meter with Some m -> Meter.add_accesses m n | None -> ()

let tick_comparisons meter n =
  match meter with Some m -> Meter.add_comparisons m n | None -> ()

(* [eval_attr t ~attr ~op ~operand] evaluates the one-step predicate
   [attr op operand] over every row as a single typed loop and returns the
   per-row verdict codes, or [None] when only the per-object walk can
   reproduce the exact semantics — an ordering comparison against a column
   whose type differs from the operand's raises [Value.Type_error] at the
   first non-null row, and replaying that abort point is the fallback's
   job. On [Some], the meter is charged exactly as the per-object walk
   would: one access per row, one comparison per non-null row. *)
let eval_attr ?meter t ~attr ~op ~operand =
  let n = t.n in
  match Hashtbl.find_opt t.slots attr with
  | None ->
    (* attribute undefined on this class: every row blocks at schema level *)
    tick_accesses meter n;
    Some (Bytes.make n c_missing)
  | Some ci ->
    let col = t.cols.(ci) in
    let ordered =
      match op with
      | Relop.Eq | Relop.Ne -> false
      | Relop.Lt | Relop.Le | Relop.Gt | Relop.Ge -> true
    in
    let typed =
      match (col.data, operand) with
      | D_int _, Value.Int _
      | D_float _, Value.Float _
      | D_str _, Value.Str _
      | D_bool _, Value.Bool _ ->
        true
      | (D_int _ | D_float _ | D_str _ | D_bool _ | D_ref _), _ -> false
    in
    if ordered && not typed then None
    else begin
      let out = Bytes.make n c_null in
      let present = col.present in
      let comparisons = ref 0 in
      let sat_of_cmp =
        match op with
        | Relop.Eq -> fun c -> c = 0
        | Relop.Ne -> fun c -> c <> 0
        | Relop.Lt -> fun c -> c < 0
        | Relop.Le -> fun c -> c <= 0
        | Relop.Gt -> fun c -> c > 0
        | Relop.Ge -> fun c -> c >= 0
      in
      let code_row r c =
        incr comparisons;
        Bytes.unsafe_set out r (if sat_of_cmp c then c_sat else c_viol)
      in
      (match (col.data, operand) with
      | D_int a, Value.Int x ->
        for r = 0 to n - 1 do
          if Bitset.mem present r then
            code_row r (Int.compare (Array.unsafe_get a r) x)
        done
      | D_float a, Value.Float x ->
        for r = 0 to n - 1 do
          if Bitset.mem present r then
            code_row r (Float.compare (Array.unsafe_get a r) x)
        done
      | D_str a, Value.Str x ->
        for r = 0 to n - 1 do
          if Bitset.mem present r then
            code_row r (String.compare (Array.unsafe_get a r) x)
        done
      | D_bool a, Value.Bool x ->
        let x = if x then 1 else 0 in
        for r = 0 to n - 1 do
          if Bitset.mem present r then
            code_row r (Int.compare (Char.code (Bytes.unsafe_get a r)) x)
        done
      | (D_int _ | D_float _ | D_str _ | D_bool _ | D_ref _), _ ->
        (* type mismatch under Eq/Ne: [Value.equal] across constructors is
           false, so every present row is Viol (Eq) / Sat (Ne) *)
        let c = if op = Relop.Ne then c_sat else c_viol in
        for r = 0 to n - 1 do
          if Bitset.mem present r then begin
            incr comparisons;
            Bytes.unsafe_set out r c
          end
        done);
      tick_accesses meter n;
      tick_comparisons meter !comparisons;
      Some out
    end
