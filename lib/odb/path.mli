(** Path expressions over composition hierarchies.

    The paper's nested predicates name nested attributes through paths such
    as [advisor.department.name] (relative to the range class). {!resolve}
    walks a path through a schema and reports either the full typed chain,
    or the point where a class fails to define the next attribute — which is
    exactly the schema-level information query localization needs to split
    predicates into local and unsolved ones. *)

type t = string list
(** Attribute names, outermost first. Always non-empty in valid queries. *)

type step = {
  on_class : string;  (** class defining the attribute *)
  index : int;  (** field position within that class *)
  attr : Schema.attr;
}

type resolution =
  | Full of step list * Schema.attr_type
      (** Every class along the path defines its attribute; the final
          attribute has the given type. *)
  | Cut of { prefix : step list; at_class : string; rest : t }
      (** [at_class] (reached through [prefix]) does not define
          [List.hd rest]: the path hits a missing attribute of that class. *)
  | Invalid of string
      (** Structurally ill-formed: empty path, unknown root class, or a
          primitive attribute used as an intermediate step. *)

val resolve : Schema.t -> root:string -> t -> resolution

val of_string : string -> t
(** Splits on ['.']. [of_string "advisor.name"] is [["advisor"; "name"]]. *)

val to_string : t -> string

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
