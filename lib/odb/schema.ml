type prim = P_int | P_float | P_string | P_bool
type attr_type = Prim of prim | Complex of string
type attr = { aname : string; atype : attr_type }
type class_def = { cname : string; attrs : attr list }

type t = {
  ordered : class_def list;
  by_name : (string, class_def) Hashtbl.t;
  (* (class, attr) -> (index, attr), precomputed for fast field access *)
  attr_slots : (string * string, int * attr) Hashtbl.t;
}

exception Invalid of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let create class_defs =
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun cd ->
      if Hashtbl.mem by_name cd.cname then invalid "duplicate class %s" cd.cname;
      Hashtbl.add by_name cd.cname cd)
    class_defs;
  let attr_slots = Hashtbl.create 64 in
  let check_class cd =
    List.iteri
      (fun i a ->
        if Hashtbl.mem attr_slots (cd.cname, a.aname) then
          invalid "duplicate attribute %s.%s" cd.cname a.aname;
        (match a.atype with
        | Prim _ -> ()
        | Complex domain ->
          if not (Hashtbl.mem by_name domain) then
            invalid "attribute %s.%s references unknown class %s" cd.cname
              a.aname domain);
        Hashtbl.add attr_slots (cd.cname, a.aname) (i, a))
      cd.attrs
  in
  List.iter check_class class_defs;
  { ordered = class_defs; by_name; attr_slots }

let classes t = t.ordered
let class_names t = List.map (fun cd -> cd.cname) t.ordered
let find_class t name = Hashtbl.find_opt t.by_name name
let mem_class t name = Hashtbl.mem t.by_name name

let require_class t cls =
  if not (mem_class t cls) then invalid "unknown class %s" cls

let attr t ~cls ~attr =
  require_class t cls;
  Option.map snd (Hashtbl.find_opt t.attr_slots (cls, attr))

let attr_index t ~cls ~attr =
  require_class t cls;
  Option.map fst (Hashtbl.find_opt t.attr_slots (cls, attr))

let arity t cls =
  match find_class t cls with
  | Some cd -> List.length cd.attrs
  | None -> invalid "unknown class %s" cls

let prim_matches p v =
  match (p, v) with
  | _, Value.Null -> true
  | P_int, Value.Int _ -> true
  | P_float, Value.Float _ -> true
  | P_string, Value.Str _ -> true
  | P_bool, Value.Bool _ -> true
  | (P_int | P_float | P_string | P_bool), _ -> false

let value_matches _t ty v =
  match (ty, v) with
  | _, Value.Null -> true
  | Prim p, _ -> prim_matches p v
  | Complex _, Value.Ref _ -> true
  | Complex _, (Value.Int _ | Value.Float _ | Value.Str _ | Value.Bool _) -> false

let equal_attr_type a b =
  match (a, b) with
  | Prim x, Prim y -> x = y
  | Complex x, Complex y -> String.equal x y
  | (Prim _ | Complex _), _ -> false

let prim_to_string = function
  | P_int -> "int"
  | P_float -> "float"
  | P_string -> "string"
  | P_bool -> "bool"

let attr_type_to_string = function
  | Prim p -> prim_to_string p
  | Complex c -> c

let pp_attr_type ppf ty = Format.pp_print_string ppf (attr_type_to_string ty)

let pp_class ppf cd =
  let pp_attr ppf a = Format.fprintf ppf "%s: %a" a.aname pp_attr_type a.atype in
  Format.fprintf ppf "@[<hov 2>class %s {@ %a }@]" cd.cname
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp_attr)
    cd.attrs

let pp ppf t =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_class ppf t.ordered
