(* The comparison operators of the query language, as a leaf module so the
   columnar layers (Extent, Sigset) can name them without depending on
   Predicate — whose interface mentions Database, which owns the extents.
   Predicate re-exports this type as [Predicate.op]. *)

type t = Eq | Ne | Lt | Le | Gt | Ge

let to_string = function
  | Eq -> "="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let pp ppf op = Format.pp_print_string ppf (to_string op)
