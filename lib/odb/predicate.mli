(** Atomic nested predicates and their three-valued evaluation.

    A predicate compares a path expression (relative to some range class)
    with a constant. Evaluation walks the object graph of one component
    database; when it hits missing data — a missing attribute of a class, or
    a null value in an object — it reports the {e blocking point}: the
    object that lacks the datum and the path suffix still to be evaluated.
    The blocking point is the paper's {e unsolved item} (when it is a nested
    object) or marks the root object itself as unsolved, and the suffix with
    the comparison forms the {e unsolved predicate} shipped to assistant
    objects for checking. *)

type op = Relop.t = Eq | Ne | Lt | Le | Gt | Ge
(** Re-export of {!Relop.t}: the same constructors, usable from the
    columnar layers below {!Database} without a cycle. *)

type t = { path : Path.t; op : op; operand : Value.t }

val make : path:Path.t -> op:op -> operand:Value.t -> t
(** Raises [Invalid_argument] on an empty path or a [Null]/[Ref] operand
    (neither is expressible in a query). *)

type cause =
  | Missing_attribute  (** the object's class does not define the attribute *)
  | Null_value  (** the attribute exists but the object holds null *)

type block = { obj : Dbobject.t; rest : Path.t; cause : cause }
(** Where evaluation stopped: [obj]'s missing datum prevents evaluating the
    suffix [rest] (whose head is the missing/null attribute). *)

type outcome =
  | Sat  (** the predicate definitely holds *)
  | Viol  (** the predicate definitely fails *)
  | Blocked of block  (** missing data; the object is a maybe candidate *)

type fetched =
  | Found of Value.t
  | Missing of block

val fetch : ?meter:Meter.t -> Database.t -> Dbobject.t -> Path.t -> fetched
(** Resolves a path from an object, following references within the same
    database. Each traversal step charges one access to [meter] (0.5 us of
    CPU in Table 1's cost model). Raises [Value.Type_error] if the path
    walks through a primitive attribute (impossible for queries validated
    against the schema). *)

val eval : ?meter:Meter.t -> Database.t -> Dbobject.t -> t -> outcome
(** Evaluates the predicate with [obj] as the path's root, charging path
    accesses and one comparison to [meter]. *)

val compare_op : ?meter:Meter.t -> op -> Value.t -> Value.t -> bool
(** [compare_op op v operand] applies the comparison to two non-null
    values, charging one comparison. Raises [Value.Type_error] on
    incomparable types. *)

val truth_of_outcome : outcome -> Truth.t

val op_to_string : op -> string

val pp_op : Format.formatter -> op -> unit

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val equal : t -> t -> bool
