(** Columnar object-signature store: one extent's signatures as two flat
    int arrays plus int-backed slot bitsets.

    The per-object {!Signature} representation stays as the executable
    specification; this module packs the same 16-bit digests row-major so
    BLS/PLS signature filtering scans contiguous memory instead of chasing
    one boxed array per object. Row [r] of a store built by appending each
    object's fields in extent order answers {!may_satisfy} exactly as
    [Signature.may_satisfy (Signature.of_object obj)] would — the qcheck
    equivalence suite pins this. *)

type t

val create : ?width:int -> arity:int -> unit -> t
(** An empty store for objects of a class with [arity] attributes. [width]
    (default [min arity Signature.max_slots]) is the digest-slot count per
    object; widths past {!Bitset.bits_per_word} spill the slot mask into a
    second word per object. Raises [Invalid_argument] on negative
    arguments. *)

val append : t -> Value.t array -> int
(** Digests one object's fields (slots [0 .. width-1]; nulls and
    references leave the slot maskless) and returns its row index. *)

val size : t -> int
(** Rows appended so far. *)

val width : t -> int
(** Digest slots per object. *)

val words_per_obj : t -> int
(** Mask words per object: [ceil (width / Bitset.bits_per_word)], at
    least 1. *)

val may_satisfy :
  t -> row:int -> index:int -> op:Relop.t -> operand:Value.t -> bool
(** Whether row [row]'s signature admits [index op operand]; equivalent to
    [Signature.may_satisfy] on that object's signature. Only [Eq] with a
    digestible operand and an in-range slot can refute. Raises
    [Invalid_argument] on an out-of-range row. *)

val refuted_count :
  t -> index:int -> op:Relop.t -> operand:Value.t -> int
(** How many rows refute [index op operand] — the whole-extent filter loop
    (one strided scan over the flat arrays); 0 whenever no signature can
    refute the shape. *)
