type t = { loid : Oid.Loid.t; cls : string; fields : Value.t array }

let make ~loid ~cls ~fields = { loid; cls; fields }
let loid o = o.loid
let cls o = o.cls

let field o i =
  if i < 0 || i >= Array.length o.fields then
    invalid_arg
      (Printf.sprintf "Dbobject.field: index %d out of range for %s" i o.cls)
  else o.fields.(i)

let fields o = Array.to_list o.fields
let has_null o = Array.exists Value.is_null o.fields

let pp ppf o =
  Format.fprintf ppf "@[<h>%s(%a: %a)@]" o.cls Oid.Loid.pp o.loid
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Value.pp)
    (fields o)
