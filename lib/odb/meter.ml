type snapshot = { comparisons : int; accesses : int; goid_lookups : int }

type t = {
  mutable comparisons : int;
  mutable accesses : int;
  mutable goid_lookups : int;
}

let create () = { comparisons = 0; accesses = 0; goid_lookups = 0 }

let zero : snapshot = { comparisons = 0; accesses = 0; goid_lookups = 0 }

let add_comparison t = t.comparisons <- t.comparisons + 1
let add_comparisons t n = t.comparisons <- t.comparisons + n
let add_accesses t n = t.accesses <- t.accesses + n
let add_goid_lookups t n = t.goid_lookups <- t.goid_lookups + n

let read t : snapshot =
  {
    comparisons = t.comparisons;
    accesses = t.accesses;
    goid_lookups = t.goid_lookups;
  }

let add (a : snapshot) (b : snapshot) : snapshot =
  {
    comparisons = a.comparisons + b.comparisons;
    accesses = a.accesses + b.accesses;
    goid_lookups = a.goid_lookups + b.goid_lookups;
  }

let units (s : snapshot) = s.comparisons + s.accesses
