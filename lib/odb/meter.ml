type snapshot = { comparisons : int; accesses : int }

let comparisons = ref 0
let accesses = ref 0
let add_comparison () = incr comparisons
let add_accesses n = accesses := !accesses + n
let read () = { comparisons = !comparisons; accesses = !accesses }

let reset () =
  comparisons := 0;
  accesses := 0

let delta before =
  let now = read () in
  {
    comparisons = now.comparisons - before.comparisons;
    accesses = now.accesses - before.accesses;
  }

let units s = s.comparisons + s.accesses
