(** Object schemas.

    A schema is a set of classes; each class has named attributes that are
    either primitive or {e complex} (their domain is another class of the
    same schema, forming the composition hierarchy of the paper's Figure 1).
    Class (inheritance) hierarchies are out of the paper's scope and are not
    modelled. *)

type prim = P_int | P_float | P_string | P_bool

type attr_type =
  | Prim of prim
  | Complex of string  (** name of the domain class *)

type attr = { aname : string; atype : attr_type }

type class_def = { cname : string; attrs : attr list }

type t

exception Invalid of string

val create : class_def list -> t
(** Validates and builds a schema. Raises {!Invalid} on duplicate class
    names, duplicate attribute names within a class, or a complex attribute
    whose domain class is not part of the schema. Composition cycles are
    legal (an object graph may be cyclic). *)

val classes : t -> class_def list
(** In declaration order. *)

val class_names : t -> string list

val find_class : t -> string -> class_def option

val mem_class : t -> string -> bool

val attr : t -> cls:string -> attr:string -> attr option
(** [None] when the class does not define the attribute — the schema-level
    {e missing attribute} test. Raises {!Invalid} if [cls] is unknown. *)

val attr_index : t -> cls:string -> attr:string -> int option
(** Position of the attribute in the class's field array. *)

val arity : t -> string -> int
(** Number of attributes of a class. *)

val prim_matches : prim -> Value.t -> bool
(** Whether a value inhabits the primitive type ([Null] inhabits all). *)

val value_matches : t -> attr_type -> Value.t -> bool
(** Whether a value inhabits the attribute type ([Null] inhabits all;
    [Ref _] inhabits exactly the complex types). *)

val equal_attr_type : attr_type -> attr_type -> bool

val attr_type_to_string : attr_type -> string

val pp_attr_type : Format.formatter -> attr_type -> unit

val pp : Format.formatter -> t -> unit
