(** A component object database.

    Holds a schema and the extents of its classes. Objects are created
    through {!add}, which allocates the LOid, checks arity and types, and
    (for [Ref] fields) checks that the referenced object exists and belongs
    to the attribute's domain class — so a well-formed database never
    contains dangling or ill-typed references. *)

type t

exception Integrity_error of string

val create : name:string -> schema:Schema.t -> t

val name : t -> string

val schema : t -> Schema.t

val add : t -> cls:string -> Value.t list -> Dbobject.t
(** Inserts a new object; fields are given in the attribute order of the
    class. Raises {!Integrity_error} on unknown class, arity mismatch, type
    mismatch, or a reference to a missing/foreign-class object. *)

val get : t -> Oid.Loid.t -> Dbobject.t option

val get_exn : t -> Oid.Loid.t -> Dbobject.t
(** Raises {!Integrity_error} when absent. *)

val deref : t -> Value.t -> Dbobject.t option
(** [deref db (Ref l)] follows a reference; [None] for any other value. *)

val extent : t -> string -> Dbobject.t list
(** All objects of a class, in insertion order — a list view materialized
    from the columnar extent. Raises {!Integrity_error} on an unknown
    class. Scan loops that care about speed should take {!extent_handle}
    instead. *)

val extent_handle : t -> string -> Extent.t
(** The class's columnar extent itself: typed columns, presence bitsets
    and the signature store, for tight-loop evaluation
    ({!Extent.eval_attr}). Raises {!Integrity_error} on an unknown
    class. *)

val extent_size : t -> string -> int

val cardinality : t -> int
(** Total number of objects across all extents. *)

val field_by_name : t -> Dbobject.t -> string -> Value.t option
(** [None] when the object's class does not define the attribute (the
    per-object missing-attribute test at schema level). *)

val pp : Format.formatter -> t -> unit
