module type ID = sig
  type t

  val of_int : int -> t
  val to_int : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string

  module Set : Set.S with type elt = t
  module Map : Map.S with type key = t
  module Table : Hashtbl.S with type key = t
end

(* Both identifier kinds are integers underneath; the functor keeps the two
   nominal types distinct while sharing the implementation. [prefix] only
   affects printing. *)
module Make (P : sig
  val prefix : string
end) : ID = struct
  type t = int

  let of_int i = i
  let to_int i = i
  let equal (a : t) (b : t) = a = b
  let compare (a : t) (b : t) = Int.compare a b
  let hash (i : t) = Hashtbl.hash i
  let to_string i = Printf.sprintf "%s%d" P.prefix i
  let pp ppf i = Format.pp_print_string ppf (to_string i)

  module Ord = struct
    type nonrec t = t

    let compare = compare
  end

  module Set = Set.Make (Ord)
  module Map = Map.Make (Ord)

  module Table = Hashtbl.Make (struct
    type nonrec t = t

    let equal = equal
    let hash = hash
  end)
end

module Loid = Make (struct
  let prefix = "l"
end)

module Goid = Make (struct
  let prefix = "g"
end)
