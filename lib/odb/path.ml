type t = string list

type step = { on_class : string; index : int; attr : Schema.attr }

type resolution =
  | Full of step list * Schema.attr_type
  | Cut of { prefix : step list; at_class : string; rest : t }
  | Invalid of string

let resolve schema ~root path =
  if path = [] then Invalid "empty path"
  else if not (Schema.mem_class schema root) then
    Invalid (Printf.sprintf "unknown root class %s" root)
  else
    let rec walk cls acc = function
      | [] ->
        (* acc is non-empty here because path was non-empty. *)
        let steps = List.rev acc in
        (match acc with
        | last :: _ -> Full (steps, last.attr.Schema.atype)
        | [] -> Invalid "empty path")
      | name :: rest -> (
        match Schema.attr schema ~cls ~attr:name with
        | None -> Cut { prefix = List.rev acc; at_class = cls; rest = name :: rest }
        | Some attr -> (
          let index =
            match Schema.attr_index schema ~cls ~attr:name with
            | Some i -> i
            | None -> assert false
          in
          let step = { on_class = cls; index; attr } in
          match (attr.Schema.atype, rest) with
          | _, [] -> walk cls (step :: acc) []
          | Schema.Complex domain, _ :: _ -> walk domain (step :: acc) rest
          | Schema.Prim _, _ :: _ ->
            Invalid
              (Printf.sprintf "attribute %s.%s is primitive but path continues"
                 cls name)))
    in
    walk root [] path

let of_string s = String.split_on_char '.' s
let to_string p = String.concat "." p
let equal (a : t) (b : t) = List.equal String.equal a b
let compare (a : t) (b : t) = List.compare String.compare a b
let pp ppf p = Format.pp_print_string ppf (to_string p)
