(** Object identifiers.

    A {!Loid.t} is a {e local object identifier}, meaningful only within one
    component database. A {!Goid.t} is a {e global object identifier}
    assigned to each real-world entity of the federation: isomeric objects —
    objects in different databases representing the same entity — share one
    GOid (paper, Section 1). The two are distinct abstract types so they can
    never be confused. *)

module Loid : sig
  type t

  val of_int : int -> t
  val to_int : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string

  module Set : Set.S with type elt = t
  module Map : Map.S with type key = t
  module Table : Hashtbl.S with type key = t
end

module Goid : sig
  type t

  val of_int : int -> t
  val to_int : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string

  module Set : Set.S with type elt = t
  module Map : Map.S with type key = t
  module Table : Hashtbl.S with type key = t
end
