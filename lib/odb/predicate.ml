type op = Relop.t = Eq | Ne | Lt | Le | Gt | Ge

type t = { path : Path.t; op : op; operand : Value.t }

let make ~path ~op ~operand =
  if path = [] then invalid_arg "Predicate.make: empty path";
  (match operand with
  | Value.Null -> invalid_arg "Predicate.make: null operand"
  | Value.Ref _ -> invalid_arg "Predicate.make: reference operand"
  | Value.Int _ | Value.Float _ | Value.Str _ | Value.Bool _ -> ());
  { path; op; operand }

type cause = Missing_attribute | Null_value
type block = { obj : Dbobject.t; rest : Path.t; cause : cause }
type outcome = Sat | Viol | Blocked of block
type fetched = Found of Value.t | Missing of block

let tick meter n =
  match meter with Some m -> Meter.add_accesses m n | None -> ()

let fetch ?meter db obj path =
  let rec go obj path =
    match path with
    | [] -> invalid_arg "Predicate.fetch: empty path"
    | name :: rest -> (
      tick meter 1;
      match Database.field_by_name db obj name with
      | None -> Missing { obj; rest = path; cause = Missing_attribute }
      | Some Value.Null -> Missing { obj; rest = path; cause = Null_value }
      | Some v -> (
        match rest with
        | [] -> Found v
        | _ :: _ -> (
          match Database.deref db v with
          | Some next -> go next rest
          | None ->
            raise
              (Value.Type_error
                 (Printf.sprintf
                    "path %s traverses primitive attribute %s of %s"
                    (Path.to_string path) name (Dbobject.cls obj))))))
  in
  go obj path

let compare_op ?meter op v operand =
  (match meter with Some m -> Meter.add_comparison m | None -> ());
  match op with
  | Eq -> Value.equal v operand
  | Ne -> not (Value.equal v operand)
  | Lt -> Value.compare_values v operand < 0
  | Le -> Value.compare_values v operand <= 0
  | Gt -> Value.compare_values v operand > 0
  | Ge -> Value.compare_values v operand >= 0

let eval ?meter db obj t =
  match fetch ?meter db obj t.path with
  | Missing block -> Blocked block
  | Found v -> if compare_op ?meter t.op v t.operand then Sat else Viol

let truth_of_outcome = function
  | Sat -> Truth.True
  | Viol -> Truth.False
  | Blocked _ -> Truth.Unknown

let op_to_string = Relop.to_string
let pp_op = Relop.pp

let pp ppf t =
  Format.fprintf ppf "%a %a %s" Path.pp t.path pp_op t.op
    (match t.operand with
    | Value.Str s -> Printf.sprintf "%S" s
    | v -> Value.to_string v)

let to_string t = Format.asprintf "%a" pp t

let equal a b =
  Path.equal a.path b.path && a.op = b.op && Value.equal a.operand b.operand
