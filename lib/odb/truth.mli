(** Three-valued logic (Kleene), the semantics of predicates over missing
    data: a predicate touching a missing attribute or a null value is
    [Unknown], and objects whose predicate conjunction is [Unknown] become
    the paper's {e maybe results}. *)

type t = True | False | Unknown

val conj : t -> t -> t

val disj : t -> t -> t

val neg : t -> t

val conj_all : t list -> t
(** Kleene conjunction of a list; [True] for the empty list. *)

val disj_all : t list -> t
(** Kleene disjunction of a list; [False] for the empty list. *)

val of_bool : bool -> t

val equal : t -> t -> bool

val to_string : t -> string

val pp : Format.formatter -> t -> unit
