(** Comparison operators, hoisted out of {!Predicate} so the columnar
    storage layers ({!Extent}, {!Sigset}) can use them without a
    dependency cycle through {!Database}. {!Predicate.op} re-exports this
    type, so [Predicate.Eq] and [Relop.Eq] are the same constructor. *)

type t = Eq | Ne | Lt | Le | Gt | Ge

val to_string : t -> string

val pp : Format.formatter -> t -> unit
