type t = {
  name : string;
  schema : Schema.t;
  objects : Dbobject.t Oid.Loid.Table.t;
  (* Columnar per-class storage; insertion order is the row order. *)
  extents : (string, Extent.t) Hashtbl.t;
  mutable next_loid : int;
  mutable cardinality : int;
}

exception Integrity_error of string

let integrity fmt = Printf.ksprintf (fun s -> raise (Integrity_error s)) fmt

let create ~name ~schema =
  let extents = Hashtbl.create 8 in
  List.iter
    (fun cd ->
      Hashtbl.add extents cd.Schema.cname
        (Extent.create ~schema ~cls:cd.Schema.cname))
    (Schema.classes schema);
  {
    name;
    schema;
    objects = Oid.Loid.Table.create 256;
    extents;
    next_loid = 0;
    cardinality = 0;
  }

let name t = t.name
let schema t = t.schema
let get t loid = Oid.Loid.Table.find_opt t.objects loid

let get_exn t loid =
  match get t loid with
  | Some o -> o
  | None -> integrity "%s: no object with loid %s" t.name (Oid.Loid.to_string loid)

let deref t = function
  | Value.Ref l -> get t l
  | Value.Null | Value.Int _ | Value.Float _ | Value.Str _ | Value.Bool _ -> None

let extent_handle t cls =
  match Hashtbl.find_opt t.extents cls with
  | Some e -> e
  | None -> integrity "%s: unknown class %s" t.name cls

let extent t cls = Extent.to_list (extent_handle t cls)
let extent_size t cls = Extent.size (extent_handle t cls)
let cardinality t = t.cardinality

let check_field t ~cls ~attr v =
  (match v with
  | Value.Ref l -> (
    match (get t l, attr.Schema.atype) with
    | None, _ ->
      integrity "%s: %s.%s references missing object %s" t.name cls
        attr.Schema.aname (Oid.Loid.to_string l)
    | Some target, Schema.Complex domain ->
      if not (String.equal (Dbobject.cls target) domain) then
        integrity "%s: %s.%s must reference %s, got %s" t.name cls
          attr.Schema.aname domain (Dbobject.cls target)
    | Some _, Schema.Prim _ ->
      integrity "%s: %s.%s is primitive but holds a reference" t.name cls
        attr.Schema.aname)
  | Value.Null | Value.Int _ | Value.Float _ | Value.Str _ | Value.Bool _ -> ());
  if not (Schema.value_matches t.schema attr.Schema.atype v) then
    integrity "%s: value %s does not match type of %s.%s" t.name
      (Value.to_string v) cls attr.Schema.aname

let add t ~cls values =
  let cd =
    match Schema.find_class t.schema cls with
    | Some cd -> cd
    | None -> integrity "%s: unknown class %s" t.name cls
  in
  let arity = List.length cd.Schema.attrs in
  if List.length values <> arity then
    integrity "%s: class %s expects %d fields, got %d" t.name cls arity
      (List.length values);
  List.iter2 (fun attr v -> check_field t ~cls ~attr v) cd.Schema.attrs values;
  let loid = Oid.Loid.of_int t.next_loid in
  t.next_loid <- t.next_loid + 1;
  let o = Dbobject.make ~loid ~cls ~fields:(Array.of_list values) in
  Oid.Loid.Table.add t.objects loid o;
  ignore (Extent.append (extent_handle t cls) o);
  t.cardinality <- t.cardinality + 1;
  o

let field_by_name t o attr =
  match Schema.attr_index t.schema ~cls:(Dbobject.cls o) ~attr with
  | Some i -> Some (Dbobject.field o i)
  | None -> None

let pp ppf t =
  Format.fprintf ppf "@[<v>database %s (%d objects)@," t.name t.cardinality;
  List.iter
    (fun cd ->
      let cls = cd.Schema.cname in
      Format.fprintf ppf "  %s: %d@," cls (extent_size t cls))
    (Schema.classes t.schema);
  Format.fprintf ppf "@]"
