(* Columnar object-signature store: the signatures of one extent packed
   into two flat int arrays instead of one boxed array per object.

   Per row (object), [width] digest slots live contiguously in [digests]
   and an int-backed bitset of [words_per_obj] words in [masks] says which
   slots actually hold a digest (bit s set iff attribute s digested — a
   null, reference or out-of-range slot stays clear). Matching a predicate
   against every signature of an extent is then a stride-1 scan, where the
   per-object representation ([Signature]) pays an array allocation and a
   bounds-checked probe per object. [Signature.may_satisfy] over
   [Signature.of_object] stays the executable specification; the qcheck
   suite pins row-for-row equivalence. *)

type t = {
  width : int;
  words_per_obj : int;
  mutable n : int;
  mutable cap : int;
  mutable digests : int array;  (* cap * width, row-major; -1 = no digest *)
  mutable masks : int array;  (* cap * words_per_obj, row-major *)
}

let words_for width =
  if width <= 0 then 1 else ((width - 1) / Bitset.bits_per_word) + 1

let create ?width ~arity () =
  if arity < 0 then invalid_arg "Sigset.create: negative arity";
  let width =
    match width with
    | Some w ->
      if w < 0 then invalid_arg "Sigset.create: negative width";
      w
    | None -> min arity Signature.max_slots
  in
  {
    width;
    words_per_obj = words_for width;
    n = 0;
    cap = 0;
    digests = [||];
    masks = [||];
  }

let size t = t.n
let width t = t.width
let words_per_obj t = t.words_per_obj

let grow t =
  let cap = if t.cap = 0 then 16 else 2 * t.cap in
  let digests = Array.make (cap * t.width) (-1) in
  Array.blit t.digests 0 digests 0 (t.n * t.width);
  let masks = Array.make (cap * t.words_per_obj) 0 in
  Array.blit t.masks 0 masks 0 (t.n * t.words_per_obj);
  t.cap <- cap;
  t.digests <- digests;
  t.masks <- masks

let append t fields =
  if t.n = t.cap then grow t;
  let row = t.n in
  let dbase = row * t.width in
  let mbase = row * t.words_per_obj in
  let slots = min (Array.length fields) t.width in
  for s = 0 to slots - 1 do
    match Signature.digest_value fields.(s) with
    | None -> t.digests.(dbase + s) <- -1
    | Some d ->
      t.digests.(dbase + s) <- d;
      let w = s / Bitset.bits_per_word in
      t.masks.(mbase + w) <-
        t.masks.(mbase + w) lor (1 lsl (s mod Bitset.bits_per_word))
  done;
  t.n <- row + 1;
  row

let has_digest t ~row ~index =
  let w = index / Bitset.bits_per_word in
  (t.masks.((row * t.words_per_obj) + w) lsr (index mod Bitset.bits_per_word))
  land 1
  = 1

let may_satisfy t ~row ~index ~op ~operand =
  if row < 0 || row >= t.n then invalid_arg "Sigset.may_satisfy: bad row";
  match op with
  | Relop.Ne | Relop.Lt | Relop.Le | Relop.Gt | Relop.Ge ->
    true
  | Relop.Eq -> (
    if index < 0 || index >= t.width then true
    else if not (has_digest t ~row ~index) then true
    else
      match Signature.digest_value operand with
      | None -> true
      | Some d -> t.digests.((row * t.width) + index) = d)

(* The BLS/PLS filter loop: how many of the [n] signatures refute
   [index op operand] — i.e. carry a digest for the slot that differs from
   the operand's. One contiguous strided scan; this is the fast path the
   microbench compares against per-object [Signature.may_satisfy]. *)
let refuted_count t ~index ~op ~operand =
  match op with
  | Relop.Ne | Relop.Lt | Relop.Le | Relop.Gt | Relop.Ge ->
    0
  | Relop.Eq -> (
    if index < 0 || index >= t.width then 0
    else
      match Signature.digest_value operand with
      | None -> 0
      | Some d ->
        let w = index / Bitset.bits_per_word in
        let bit = index mod Bitset.bits_per_word in
        let count = ref 0 in
        let digests = t.digests and masks = t.masks in
        let width = t.width and wpo = t.words_per_obj in
        for row = 0 to t.n - 1 do
          if
            (Array.unsafe_get masks ((row * wpo) + w) lsr bit) land 1 = 1
            && Array.unsafe_get digests ((row * width) + index) <> d
          then incr count
        done;
        !count)
