(* Growable bitset over an int array: [Sys.int_size] usable bits per word
   (63 on 64-bit), so indices past one word spill naturally into the next —
   the representation behind columnar null-presence tracking and the
   signature slot masks. *)

type t = { mutable words : int array }

let bits_per_word = Sys.int_size

let words_for n = if n <= 0 then 1 else ((n - 1) / bits_per_word) + 1

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Array.make (words_for n) 0 }

let ensure t w =
  let len = Array.length t.words in
  if w >= len then begin
    let cap = max (w + 1) (2 * len) in
    let words = Array.make cap 0 in
    Array.blit t.words 0 words 0 len;
    t.words <- words
  end

let set t i =
  if i < 0 then invalid_arg "Bitset.set: negative index";
  let w = i / bits_per_word in
  ensure t w;
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let mem t i =
  if i < 0 then invalid_arg "Bitset.mem: negative index";
  let w = i / bits_per_word in
  w < Array.length t.words
  && (t.words.(w) lsr (i mod bits_per_word)) land 1 = 1

let rec popcount x acc = if x = 0 then acc else popcount (x lsr 1) (acc + (x land 1))

let cardinal t = Array.fold_left (fun acc w -> popcount w acc) 0 t.words

let capacity t = Array.length t.words * bits_per_word
