(** Growable int-backed bitset.

    [Sys.int_size] usable bits per word (63 on a 64-bit runtime), so an
    index past bit 62 transparently spills into a second word — the
    boundary the signature tests pin. Backs the per-attribute presence
    (non-null) masks of columnar extents ({!Extent}) and the slot masks of
    the columnar signature store ({!Sigset}). *)

type t

val bits_per_word : int
(** [Sys.int_size]: 63 on a 64-bit runtime. *)

val create : int -> t
(** [create n] is an empty bitset sized for indices [0 .. n-1]; it grows
    on demand when a larger index is {!set}. Raises [Invalid_argument] on
    a negative [n]. *)

val set : t -> int -> unit
(** Sets bit [i], growing the backing array if needed. Raises
    [Invalid_argument] on a negative index. *)

val mem : t -> int -> bool
(** Whether bit [i] is set; [false] for any index never touched. Raises
    [Invalid_argument] on a negative index. *)

val cardinal : t -> int
(** Number of set bits. *)

val capacity : t -> int
(** Indices currently representable without growing (a multiple of
    {!bits_per_word}). *)
