(** Attribute values.

    [Null] represents a null value originally existing in a component
    database — one of the paper's two sources of missing data (the other
    being schema-level missing attributes). [Ref] holds the LOid of another
    object in the {e same} component database (complex attribute). *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Ref of Oid.Loid.t

exception Type_error of string
(** Raised when two values of incompatible types are compared. Query
    analysis prevents this for well-typed queries; hitting it at run time
    indicates corrupt data or a bug. *)

val is_null : t -> bool

val equal : t -> t -> bool
(** Structural equality. [Null] equals only [Null] here — predicate-level
    null semantics (Unknown) are handled by the predicate evaluator, not by
    this function. *)

val compare_values : t -> t -> int
(** Total order within a type. Raises {!Type_error} across types, and on
    [Ref]s (object identity is not an ordered domain) and [Null]s. *)

val type_name : t -> string

val pp : Format.formatter -> t -> unit

val to_string : t -> string
