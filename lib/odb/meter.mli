(** Per-run instrumentation counters for the cost model.

    The paper charges CPU time per comparison (Table 1: 0.5 us). We count
    three kinds of unit work: value {e comparisons} (predicate operators,
    hash probes), attribute {e accesses} (each step of a path traversal,
    field merges), and GOID-table {e lookups} (federation dictionary
    probes). Executors convert {!units} into simulated CPU time.

    A meter is an explicit instance: each executor phase creates its own and
    reports a {!snapshot}, so concurrent queries never bleed counts into
    each other. (The previous design used process-global refs with
    [reset]/[delta]; that made [Strategy.run_concurrent] attribution
    unreliable and is gone.) *)

type snapshot = { comparisons : int; accesses : int; goid_lookups : int }

type t
(** A mutable counter instance. *)

val create : unit -> t

val zero : snapshot

val add_comparison : t -> unit

val add_comparisons : t -> int -> unit
(** Bulk form for columnar loops ({!Extent.eval_attr}): only snapshot
    totals are ever read, so charging [n] comparisons at once is
    indistinguishable from [n] unit ticks. *)

val add_accesses : t -> int -> unit
val add_goid_lookups : t -> int -> unit

val read : t -> snapshot

val add : snapshot -> snapshot -> snapshot
(** Pointwise sum, for aggregating phase snapshots. *)

val units : snapshot -> int
(** Total CPU unit-work in a snapshot: comparisons + accesses. GOID lookups
    are charged separately (Table 2's dictionary costs), so they are not
    included. *)
