(** Global instrumentation counters for the cost model.

    The paper charges CPU time per comparison (Table 1: 0.5 us). We count
    two kinds of unit work: value {e comparisons} (predicate operators, hash
    probes) and attribute {e accesses} (each step of a path traversal, field
    merges). Executors read deltas around each phase to convert work into
    simulated CPU time.

    Counters are process-global; the executors are single-threaded. *)

type snapshot = { comparisons : int; accesses : int }

val add_comparison : unit -> unit

val add_accesses : int -> unit

val read : unit -> snapshot

val reset : unit -> unit

val delta : snapshot -> snapshot
(** [delta before] is the work done since [before]. *)

val units : snapshot -> int
(** Total unit-work in a snapshot: comparisons + accesses. *)
