type t = True | False | Unknown

let conj a b =
  match (a, b) with
  | False, _ | _, False -> False
  | True, True -> True
  | Unknown, (True | Unknown) | True, Unknown -> Unknown

let disj a b =
  match (a, b) with
  | True, _ | _, True -> True
  | False, False -> False
  | Unknown, (False | Unknown) | False, Unknown -> Unknown

let neg = function True -> False | False -> True | Unknown -> Unknown
let conj_all ts = List.fold_left conj True ts
let disj_all ts = List.fold_left disj False ts
let of_bool b = if b then True else False
let equal (a : t) (b : t) = a = b

let to_string = function
  | True -> "true"
  | False -> "false"
  | Unknown -> "unknown"

let pp ppf t = Format.pp_print_string ppf (to_string t)
