open Msdq_simkit

type window = { down : Time.t; up : Time.t }

type site_faults = { site : int; outages : window list }

type link_faults = { dst : int; drop : float; inflate : float; jitter : float }

type direction = Inbound | Outbound

type slowdown = { slow_site : int; factor : float; busy : window list }

type partition = { part_site : int; direction : direction; cut : window list }

type schedule = {
  seed : int;
  sites : site_faults list;
  links : link_faults list;
  slowdowns : slowdown list;
  partitions : partition list;
}

let none = { seed = 0; sites = []; links = []; slowdowns = []; partitions = [] }

let is_none s =
  s.sites = [] && s.links = [] && s.slowdowns = [] && s.partitions = []

let fail fmt = Printf.ksprintf invalid_arg fmt

(* Shared window-train check; [what] is "site %d" for outages and a longer
   phrase for slowdown/partition windows, so the historical outage messages
   stay byte-identical. *)
let check_windows ~what ws =
  let rec loop prev = function
    | [] -> ()
    | w :: rest ->
      if Time.compare w.down Time.zero < 0 then
        fail "Fault.validate: %s: window starts before time zero" what;
      if Time.compare w.up w.down <= 0 then
        fail "Fault.validate: %s: window recovers at %g, not after crash at %g"
          what (Time.to_us w.up) (Time.to_us w.down);
      (match prev with
      | Some p when Time.compare w.down p.up < 0 ->
        fail "Fault.validate: %s: windows overlap or are unordered" what
      | _ -> ());
      loop (Some w) rest
  in
  loop None ws

let validate s =
  List.iter
    (fun sf ->
      if sf.site < 0 then fail "Fault.validate: negative site id %d" sf.site;
      check_windows ~what:(Printf.sprintf "site %d" sf.site) sf.outages)
    s.sites;
  List.iter
    (fun lf ->
      if lf.dst < 0 then fail "Fault.validate: negative link site id %d" lf.dst;
      if not (Float.is_finite lf.drop) || lf.drop < 0.0 || lf.drop > 1.0 then
        fail "Fault.validate: link to %d: drop probability %g outside [0,1]"
          lf.dst lf.drop;
      if Float.is_nan lf.inflate || lf.inflate < 1.0 then
        fail "Fault.validate: link to %d: inflation %g below 1" lf.dst lf.inflate;
      if not (Float.is_finite lf.jitter) || lf.jitter < 0.0 then
        fail "Fault.validate: link to %d: jitter %g negative or not finite"
          lf.dst lf.jitter)
    s.links;
  List.iter
    (fun sl ->
      if sl.slow_site < 0 then
        fail "Fault.validate: negative slowdown site id %d" sl.slow_site;
      if not (Float.is_finite sl.factor) || sl.factor < 1.0 then
        fail "Fault.validate: slowdown at site %d: factor %g below 1"
          sl.slow_site sl.factor;
      check_windows
        ~what:(Printf.sprintf "slowdown at site %d" sl.slow_site)
        sl.busy)
    s.slowdowns;
  List.iter
    (fun p ->
      if p.part_site < 0 then
        fail "Fault.validate: negative partition site id %d" p.part_site;
      check_windows
        ~what:(Printf.sprintf "partition at site %d" p.part_site)
        p.cut)
    s.partitions

let covering_window ws ~at =
  List.find_opt
    (fun w -> Time.compare w.down at <= 0 && Time.compare at w.up < 0)
    ws

let outages_of s site =
  match List.find_opt (fun sf -> sf.site = site) s.sites with
  | Some sf -> sf.outages
  | None -> []

let covering s ~site ~at = covering_window (outages_of s site) ~at

let site_down s ~site ~at = covering s ~site ~at <> None

let next_up s ~site ~at =
  match covering s ~site ~at with
  | None -> Some at
  | Some w -> if Float.is_finite w.up then Some w.up else None

let permanently_down s ~site ~at =
  match covering s ~site ~at with
  | None -> false
  | Some w -> not (Float.is_finite w.up)

let failed_sites s =
  List.sort_uniq compare
    (List.filter_map
       (fun sf -> if sf.outages <> [] then Some sf.site else None)
       s.sites)

let link_of s dst = List.find_opt (fun lf -> lf.dst = dst) s.links

let slow_factor s ~site ~at =
  List.fold_left
    (fun acc sl ->
      if sl.slow_site = site && covering_window sl.busy ~at <> None then
        acc *. sl.factor
      else acc)
    1.0 s.slowdowns

let gray_sites s =
  let slow =
    List.filter_map
      (fun sl -> if sl.busy <> [] then Some sl.slow_site else None)
      s.slowdowns
  in
  let cut =
    List.filter_map
      (fun p -> if p.cut <> [] then Some p.part_site else None)
      s.partitions
  in
  List.sort_uniq compare (slow @ cut)

let one_way_cut s ~src ~dst ~at =
  List.exists
    (fun p ->
      covering_window p.cut ~at <> None
      &&
      match p.direction with
      | Inbound -> p.part_site = dst
      | Outbound -> ( match src with Some sr -> p.part_site = sr | None -> false))
    s.partitions

(* The per-transfer loss draw. SplitMix64-style avalanche over the transfer's
   identity; purely functional in (seed, dst, label, start), so it cannot
   depend on evaluation order. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let unit_draw ?(salt = 0L) s ~dst ~label ~start =
  let h = ref (mix64 (Int64.logxor (Int64.of_int s.seed) salt)) in
  let absorb i = h := mix64 (Int64.logxor !h i) in
  absorb (Int64.of_int dst);
  String.iter (fun c -> absorb (Int64.of_int (Char.code c))) label;
  absorb (Int64.bits_of_float (Time.to_us start));
  let bits = Int64.shift_right_logical !h 11 in
  Int64.to_float bits /. 9007199254740992.0

let drop_draw s ~dst ~label ~start ~p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else unit_draw s ~dst ~label ~start < p

(* The deterministic jitter draw: a second, independently-salted hash of the
   same transfer identity, scaled into [1, 1 + jitter). Same order-independence
   contract as [drop_draw]. *)
let jitter_draw s ~dst ~label ~start =
  match link_of s dst with
  | Some lf when lf.jitter > 0.0 ->
    1.0 +. (lf.jitter *. unit_draw ~salt:0x6A69747465724CL s ~dst ~label ~start)
  | Some _ | None -> 1.0

(* One shared interpretation of a link transfer, used by the engine judge and
   by host-side fate precomputation (serve admission, recovery probes):
   stretch by the link's inflation factor and the deterministic jitter draw,
   then doom the transfer if the destination is down at the stretched finish,
   a one-way partition cuts the direction of travel, or the loss draw fires. *)
let link_fate s ?src ~dst ~label ~start ~duration () =
  let duration =
    let mult =
      (match link_of s dst with
      | Some lf when lf.inflate > 1.0 -> lf.inflate
      | Some _ | None -> 1.0)
      *. jitter_draw s ~dst ~label ~start
    in
    if mult > 1.0 then Time.us (Time.to_us duration *. mult) else duration
  in
  let finish = Time.add start duration in
  let drop =
    if site_down s ~site:dst ~at:finish then
      Some (Printf.sprintf "site %d down" dst)
    else if
      List.exists
        (fun p ->
          p.direction = Inbound && p.part_site = dst
          && covering_window p.cut ~at:finish <> None)
        s.partitions
    then Some (Printf.sprintf "one-way partition into %d" dst)
    else
      match src with
      | Some sr
        when List.exists
               (fun p ->
                 p.direction = Outbound && p.part_site = sr
                 && covering_window p.cut ~at:start <> None)
               s.partitions ->
        Some (Printf.sprintf "one-way partition out of %d" sr)
      | _ -> (
        match link_of s dst with
        | Some lf when drop_draw s ~dst ~label ~start ~p:lf.drop ->
          Some (Printf.sprintf "link to %d lossy" dst)
        | Some _ | None -> None)
  in
  (duration, drop)

let judge s : Engine.judge =
 fun ~site ~kind ~src ~label ~start ~duration ->
  match kind with
  | Resource.Cpu | Resource.Disk -> (
    match slow_factor s ~site ~at:start with
    | f when f > 1.0 ->
      Some
        {
          Engine.fault_duration = Time.us (Time.to_us duration *. f);
          fault_drop = None;
        }
    | _ -> None)
  | Resource.Link ->
    let duration, drop = link_fate s ?src ~dst:site ~label ~start ~duration () in
    Some { Engine.fault_duration = duration; fault_drop = drop }

let install s e = if not (is_none s) then Engine.set_judge e (judge s)

let flap_train ~from ~until ~period ~duty =
  if not (Time.is_finite period) || Time.compare period Time.zero <= 0 then
    invalid_arg "Fault.flap_train: period must be positive and finite";
  if not (Float.is_finite duty) || duty <= 0.0 || duty >= 1.0 then
    invalid_arg "Fault.flap_train: duty must be in (0, 1)";
  if Time.compare from Time.zero < 0 then
    invalid_arg "Fault.flap_train: from must be >= 0";
  if Time.compare until from <= 0 then
    invalid_arg "Fault.flap_train: until must be after from";
  let p = Time.to_us period and hi = Time.to_us until in
  let rec build t acc =
    if t >= hi then List.rev acc
    else
      let up_at = Float.min hi (t +. (duty *. p)) in
      if up_at <= t then List.rev acc
      else build (t +. p) ({ down = Time.us t; up = Time.us up_at } :: acc)
  in
  build (Time.to_us from) []

let random ~rng ~sites ~availability ~horizon ?(drop = 0.0) ?(inflate = 1.0)
    ?(jitter = 0.0) ?(slow = 1.0) ?flap ?(oneway = 0.0) () =
  if
    (not (Float.is_finite availability))
    || availability <= 0.0 || availability > 1.0
  then invalid_arg "Fault.random: availability must be in (0, 1]";
  if not (Time.is_finite horizon) || Time.compare horizon Time.zero <= 0 then
    invalid_arg "Fault.random: horizon must be positive and finite";
  if not (Float.is_finite jitter) || jitter < 0.0 then
    invalid_arg "Fault.random: jitter must be >= 0";
  if not (Float.is_finite slow) || slow < 1.0 then
    invalid_arg "Fault.random: slow must be >= 1";
  if not (Float.is_finite oneway) || oneway < 0.0 || oneway > 1.0 then
    invalid_arg "Fault.random: oneway must be in [0, 1]";
  let seed = Msdq_workload.Rng.int rng ~bound:0x3FFFFFFF in
  let h = Time.to_us horizon in
  (* Alternating up/down trains from one per-purpose stream; [share] is the
     expected degraded fraction of the horizon. *)
  let train srng ~share =
    let cycle = h /. 10.0 in
    let mean_down = cycle *. share in
    let mean_up = cycle *. (1.0 -. share) in
    let duration mean =
      (* uniform in [0.5, 1.5) x mean: bounded, never zero *)
      mean *. Msdq_workload.Rng.frange srng ~lo:0.5 ~hi:1.5
    in
    let rec build t acc =
      if t >= h then List.rev acc
      else
        let up_for = duration mean_up in
        let down_at = t +. up_for in
        if down_at >= h then List.rev acc
        else
          let down_for = Float.max 1.0 (duration mean_down) in
          let up_at = Float.min h (down_at +. down_for) in
          build up_at ({ down = Time.us down_at; up = Time.us up_at } :: acc)
    in
    build 0.0 []
  in
  let site_plans =
    if availability >= 1.0 then []
    else
      List.mapi
        (fun rank site ->
          let srng = Msdq_workload.Rng.split_ix rng ~i:rank in
          match flap with
          | None -> { site; outages = train srng ~share:(1.0 -. availability) }
          | Some period ->
            (* Rapid down/up trains at the requested period, phase-shifted
               per site; the duty cycle keeps the expected down share. *)
            let phase =
              Msdq_workload.Rng.frange srng ~lo:0.0
                ~hi:(Time.to_us period)
            in
            {
              site;
              outages =
                flap_train ~from:(Time.us phase) ~until:horizon ~period
                  ~duty:(1.0 -. availability);
            })
        sites
  in
  let links =
    if drop > 0.0 || inflate > 1.0 || jitter > 0.0 then
      List.map (fun site -> { dst = site; drop; inflate; jitter }) sites
    else []
  in
  (* Gray draws come from streams far above the per-site outage ranks, so
     turning a gray knob on never perturbs the binary-fault schedule. *)
  let gray_share = if availability < 1.0 then 1.0 -. availability else 0.5 in
  let slowdowns =
    if slow <= 1.0 then []
    else
      List.mapi
        (fun rank site ->
          let srng = Msdq_workload.Rng.split_ix rng ~i:(2000 + rank) in
          { slow_site = site; factor = slow; busy = train srng ~share:gray_share })
        sites
  in
  let partitions =
    if oneway <= 0.0 then []
    else
      List.concat
        (List.mapi
           (fun rank site ->
             let srng = Msdq_workload.Rng.split_ix rng ~i:(3000 + rank) in
             let u = Msdq_workload.Rng.frange srng ~lo:0.0 ~hi:1.0 in
             if u >= oneway then []
             else
               let direction =
                 if Msdq_workload.Rng.frange srng ~lo:0.0 ~hi:1.0 < 0.5 then
                   Inbound
                 else Outbound
               in
               [ { part_site = site; direction; cut = train srng ~share:gray_share } ])
           sites)
  in
  let s = { seed; sites = site_plans; links; slowdowns; partitions } in
  validate s;
  s

let pp_direction ppf = function
  | Inbound -> Format.fprintf ppf "inbound"
  | Outbound -> Format.fprintf ppf "outbound"

let pp_windows ppf ws =
  List.iter
    (fun w ->
      if Float.is_finite w.up then
        Format.fprintf ppf " [%a, %a)" Time.pp w.down Time.pp w.up
      else Format.fprintf ppf " [%a, forever)" Time.pp w.down)
    ws

let pp ppf s =
  if is_none s then Format.fprintf ppf "no faults"
  else begin
    Format.fprintf ppf "@[<v>fault schedule (seed %d):@," s.seed;
    List.iter
      (fun sf ->
        Format.fprintf ppf "  site %d down:" sf.site;
        pp_windows ppf sf.outages;
        Format.fprintf ppf "@,")
      s.sites;
    List.iter
      (fun lf ->
        Format.fprintf ppf "  link to %d: drop %.2f, inflate %.2fx" lf.dst
          lf.drop lf.inflate;
        if lf.jitter > 0.0 then Format.fprintf ppf ", jitter %.2f" lf.jitter;
        Format.fprintf ppf "@,")
      s.links;
    List.iter
      (fun sl ->
        Format.fprintf ppf "  site %d slow %.2fx:" sl.slow_site sl.factor;
        pp_windows ppf sl.busy;
        Format.fprintf ppf "@,")
      s.slowdowns;
    List.iter
      (fun p ->
        Format.fprintf ppf "  site %d partitioned %a:" p.part_site pp_direction
          p.direction;
        pp_windows ppf p.cut;
        Format.fprintf ppf "@,")
      s.partitions;
    Format.fprintf ppf "@]"
  end
