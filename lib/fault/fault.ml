open Msdq_simkit

type window = { down : Time.t; up : Time.t }

type site_faults = { site : int; outages : window list }

type link_faults = { dst : int; drop : float; inflate : float }

type schedule = {
  seed : int;
  sites : site_faults list;
  links : link_faults list;
}

let none = { seed = 0; sites = []; links = [] }

let is_none s = s.sites = [] && s.links = []

let validate s =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  List.iter
    (fun sf ->
      if sf.site < 0 then fail "Fault.validate: negative site id %d" sf.site;
      let rec windows prev = function
        | [] -> ()
        | w :: rest ->
          if Time.compare w.down Time.zero < 0 then
            fail "Fault.validate: site %d: window starts before time zero" sf.site;
          if Time.compare w.up w.down <= 0 then
            fail "Fault.validate: site %d: window recovers at %g, not after crash at %g"
              sf.site (Time.to_us w.up) (Time.to_us w.down);
          (match prev with
          | Some p when Time.compare w.down p.up < 0 ->
            fail "Fault.validate: site %d: windows overlap or are unordered" sf.site
          | _ -> ());
          windows (Some w) rest
      in
      windows None sf.outages)
    s.sites;
  List.iter
    (fun lf ->
      if lf.dst < 0 then fail "Fault.validate: negative link site id %d" lf.dst;
      if not (Float.is_finite lf.drop) || lf.drop < 0.0 || lf.drop > 1.0 then
        fail "Fault.validate: link to %d: drop probability %g outside [0,1]"
          lf.dst lf.drop;
      if Float.is_nan lf.inflate || lf.inflate < 1.0 then
        fail "Fault.validate: link to %d: inflation %g below 1" lf.dst lf.inflate)
    s.links

let outages_of s site =
  match List.find_opt (fun sf -> sf.site = site) s.sites with
  | Some sf -> sf.outages
  | None -> []

let covering s ~site ~at =
  List.find_opt
    (fun w -> Time.compare w.down at <= 0 && Time.compare at w.up < 0)
    (outages_of s site)

let site_down s ~site ~at = covering s ~site ~at <> None

let next_up s ~site ~at =
  match covering s ~site ~at with
  | None -> Some at
  | Some w -> if Float.is_finite w.up then Some w.up else None

let permanently_down s ~site ~at =
  match covering s ~site ~at with
  | None -> false
  | Some w -> not (Float.is_finite w.up)

let failed_sites s =
  List.sort_uniq compare
    (List.filter_map
       (fun sf -> if sf.outages <> [] then Some sf.site else None)
       s.sites)

let link_of s dst = List.find_opt (fun lf -> lf.dst = dst) s.links

(* The per-transfer loss draw. SplitMix64-style avalanche over the transfer's
   identity; purely functional in (seed, dst, label, start), so it cannot
   depend on evaluation order. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let drop_draw s ~dst ~label ~start ~p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else begin
    let h = ref (mix64 (Int64.of_int s.seed)) in
    let absorb i = h := mix64 (Int64.logxor !h i) in
    absorb (Int64.of_int dst);
    String.iter (fun c -> absorb (Int64.of_int (Char.code c))) label;
    absorb (Int64.bits_of_float (Time.to_us start));
    let bits = Int64.shift_right_logical !h 11 in
    Int64.to_float bits /. 9007199254740992.0 < p
  end

let judge s : Engine.judge =
 fun ~site ~kind ~label ~start ~duration ->
  match kind with
  | Resource.Cpu | Resource.Disk -> None
  | Resource.Link ->
    let duration =
      match link_of s site with
      | Some lf when lf.inflate > 1.0 -> Time.us (Time.to_us duration *. lf.inflate)
      | Some _ | None -> duration
    in
    let finish = Time.add start duration in
    let drop =
      if site_down s ~site ~at:finish then
        Some (Printf.sprintf "site %d down" site)
      else
        match link_of s site with
        | Some lf when drop_draw s ~dst:site ~label ~start ~p:lf.drop ->
          Some (Printf.sprintf "link to %d lossy" site)
        | Some _ | None -> None
    in
    Some { Engine.fault_duration = duration; fault_drop = drop }

let install s e = if not (is_none s) then Engine.set_judge e (judge s)

let random ~rng ~sites ~availability ~horizon ?(drop = 0.0) ?(inflate = 1.0) () =
  if
    (not (Float.is_finite availability))
    || availability <= 0.0 || availability > 1.0
  then invalid_arg "Fault.random: availability must be in (0, 1]";
  if not (Time.is_finite horizon) || Time.compare horizon Time.zero <= 0 then
    invalid_arg "Fault.random: horizon must be positive and finite";
  let seed = Msdq_workload.Rng.int rng ~bound:0x3FFFFFFF in
  let h = Time.to_us horizon in
  let site_plans =
    if availability >= 1.0 then []
    else
      List.mapi
        (fun rank site ->
          let srng = Msdq_workload.Rng.split_ix rng ~i:rank in
          (* Alternating up/down periods: the mean cycle is a tenth of the
             horizon, split so the expected down share is 1 - availability. *)
          let cycle = h /. 10.0 in
          let mean_down = cycle *. (1.0 -. availability) in
          let mean_up = cycle *. availability in
          let duration mean =
            (* uniform in [0.5, 1.5) x mean: bounded, never zero *)
            mean *. Msdq_workload.Rng.frange srng ~lo:0.5 ~hi:1.5
          in
          let rec build t acc =
            if t >= h then List.rev acc
            else
              let up_for = duration mean_up in
              let down_at = t +. up_for in
              if down_at >= h then List.rev acc
              else
                let down_for = Float.max 1.0 (duration mean_down) in
                let up_at = Float.min h (down_at +. down_for) in
                build up_at ({ down = Time.us down_at; up = Time.us up_at } :: acc)
          in
          { site; outages = build 0.0 [] })
        sites
  in
  let links =
    if drop > 0.0 || inflate > 1.0 then
      List.map (fun site -> { dst = site; drop; inflate }) sites
    else []
  in
  let s = { seed; sites = site_plans; links } in
  validate s;
  s

let pp ppf s =
  if is_none s then Format.fprintf ppf "no faults"
  else begin
    Format.fprintf ppf "@[<v>fault schedule (seed %d):@," s.seed;
    List.iter
      (fun sf ->
        Format.fprintf ppf "  site %d down:" sf.site;
        List.iter
          (fun w ->
            if Float.is_finite w.up then
              Format.fprintf ppf " [%a, %a)" Time.pp w.down Time.pp w.up
            else Format.fprintf ppf " [%a, forever)" Time.pp w.down)
          sf.outages;
        Format.fprintf ppf "@,")
      s.sites;
    List.iter
      (fun lf ->
        Format.fprintf ppf "  link to %d: drop %.2f, inflate %.2fx@," lf.dst
          lf.drop lf.inflate)
      s.links;
    Format.fprintf ppf "@]"
  end
