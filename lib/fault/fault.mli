(** Deterministic fault injection for the simulated federation.

    A {!schedule} describes how the federation misbehaves during one run:
    per-site crash/recover windows and per-link loss (drop probability and
    latency inflation). Interpreted by the engine through {!judge}, it makes
    transfers {e into} a crashed site and transfers across a lossy link fail
    at their would-be finish time; CPU and disk work is unaffected (a
    crashed site's work simply never pays off, because nothing can be
    shipped out of or into it while it is down).

    Everything is deterministic. Crash windows are explicit data; the
    per-transfer drop draw hashes the schedule's [seed] together with the
    transfer's destination, label and start time, so a decision depends only
    on the schedule and on {e when and what} is transferred — never on
    evaluation order, host scheduling or a hidden global RNG. Two runs with
    the same schedule and the same task timeline fail identically; parallel
    sweeps stay reproducible point by point (the same contract as
    [Rng.split_ix], see docs/PARALLELISM.md).

    {!random} draws a schedule from a seeded [Msdq_workload.Rng] — the
    chaos-testing and fault-sweep entry point. *)

open Msdq_simkit

type window = {
  down : Time.t;  (** crash instant (inclusive) *)
  up : Time.t;  (** recovery instant (exclusive); [infinity] = never *)
}

type site_faults = {
  site : int;
  outages : window list;  (** disjoint, in increasing time order *)
}

type link_faults = {
  dst : int;  (** the incoming link of this site *)
  drop : float;  (** probability a transfer across the link is lost *)
  inflate : float;  (** latency multiplier, >= 1.0 *)
}

type schedule = {
  seed : int;  (** decides the per-transfer drop draws *)
  sites : site_faults list;
  links : link_faults list;
}

val none : schedule
(** The empty schedule: nothing fails. Strategies treat it as "fault
    injection off" and build exactly the fault-free task graph. *)

val is_none : schedule -> bool

val validate : schedule -> unit
(** Raises [Invalid_argument] with a readable message on malformed
    schedules: overlapping or unordered windows, [up <= down], drop
    probabilities outside [0,1], inflation < 1, negative sites. *)

val site_down : schedule -> site:int -> at:Time.t -> bool

val next_up : schedule -> site:int -> at:Time.t -> Time.t option
(** The earliest instant [>= at] at which [site] is up, or [None] if it
    never recovers ([up = infinity] on the covering window). *)

val permanently_down : schedule -> site:int -> at:Time.t -> bool
(** The site is down at [at] and never recovers. *)

val failed_sites : schedule -> int list
(** Sites with at least one outage window, sorted. *)

val drop_draw : schedule -> dst:int -> label:string -> start:Time.t -> p:float -> bool
(** The deterministic per-transfer loss draw: a pure hash of [(seed, dst,
    label, start)] against probability [p]. Exposed for tests. *)

val judge : schedule -> Engine.judge
(** The engine interpretation. Only [Link] tasks are affected: the duration
    is stretched by the link's inflation factor; the task is dropped when
    the destination site is down at the stretched finish time (reason
    ["site N down"]) or when the link's loss draw fires (reason
    ["link to N lossy"]). *)

val install : schedule -> Engine.t -> unit
(** [Engine.set_judge] with {!judge} — a no-op for {!none}. *)

val random :
  rng:Msdq_workload.Rng.t ->
  sites:int list ->
  availability:float ->
  horizon:Time.t ->
  ?drop:float ->
  ?inflate:float ->
  unit ->
  schedule
(** A random recoverable schedule: each listed site is down for an expected
    fraction [1 - availability] of [0, horizon], as alternating up/down
    periods drawn from per-site streams ([Rng.split_ix] on the site's rank,
    so one site's windows never depend on another's draws). Every window
    recovers within the horizon. [drop]/[inflate] (default 0 / 1) apply to
    every listed site's incoming link. [availability] must be in (0, 1].
    Availability 1 yields no outage windows at all, so [~availability:1.0]
    with a non-zero [drop] builds a {e lossy-link-only} schedule: no site
    ever crashes, but messages are still lost — the chaos point that
    exercises retransmission and failover without any crash recovery. The
    schedule's drop seed is drawn from [rng]. *)

val pp : Format.formatter -> schedule -> unit
