(** Deterministic fault injection for the simulated federation.

    A {!schedule} describes how the federation misbehaves during one run:
    per-site crash/recover windows, per-link loss (drop probability, latency
    inflation and deterministic jitter), and the {e gray} failure kinds —
    per-site slowdown windows (a CPU/disk service-time multiplier while the
    window covers the task's start) and asymmetric one-way link partitions
    (only one direction of a site's traffic is cut, so a request can arrive
    while its verdict is lost, or vice versa). Interpreted by the engine
    through {!judge}, it makes transfers {e into} a crashed site and
    transfers across a lossy link fail at their would-be finish time; CPU
    and disk work is stretched inside slowdown windows and otherwise
    unaffected.

    Everything is deterministic. Crash, slowdown and partition windows are
    explicit data; the per-transfer drop and jitter draws hash the
    schedule's [seed] together with the transfer's destination, label and
    start time, so a decision depends only on the schedule and on {e when
    and what} is transferred — never on evaluation order, host scheduling or
    a hidden global RNG. Two runs with the same schedule and the same task
    timeline fail identically; parallel sweeps stay reproducible point by
    point (the same contract as [Rng.split_ix], see docs/PARALLELISM.md).

    {!random} draws a schedule from a seeded [Msdq_workload.Rng] — the
    chaos-testing and fault-sweep entry point; the gray knobs draw from
    streams disjoint from the binary-fault streams, so enabling them never
    perturbs the crash schedule. *)

open Msdq_simkit

type window = {
  down : Time.t;  (** crash instant (inclusive) *)
  up : Time.t;  (** recovery instant (exclusive); [infinity] = never *)
}

type site_faults = {
  site : int;
  outages : window list;  (** disjoint, in increasing time order *)
}

type link_faults = {
  dst : int;  (** the incoming link of this site *)
  drop : float;  (** probability a transfer across the link is lost *)
  inflate : float;  (** latency multiplier, >= 1.0 *)
  jitter : float;
      (** extra per-transfer latency amplitude, >= 0: each transfer is
          additionally stretched by a deterministic draw from
          [1, 1 + jitter) (see {!jitter_draw}) *)
}

type direction =
  | Inbound  (** transfers {e into} the site are cut *)
  | Outbound  (** transfers {e out of} the site are cut *)

type slowdown = {
  slow_site : int;
  factor : float;  (** CPU/disk service-time multiplier, >= 1.0 *)
  busy : window list;  (** disjoint, in increasing time order *)
}

type partition = {
  part_site : int;
  direction : direction;
  cut : window list;  (** disjoint, in increasing time order *)
}

type schedule = {
  seed : int;  (** decides the per-transfer drop and jitter draws *)
  sites : site_faults list;
  links : link_faults list;
  slowdowns : slowdown list;
  partitions : partition list;
}

val none : schedule
(** The empty schedule: nothing fails. Strategies treat it as "fault
    injection off" and build exactly the fault-free task graph. *)

val is_none : schedule -> bool

val validate : schedule -> unit
(** Raises [Invalid_argument] with a readable message on malformed
    schedules: overlapping or unordered windows (outage, slowdown or
    partition), [up <= down], drop probabilities outside [0,1], inflation
    < 1, negative jitter, slowdown factors < 1, negative sites. *)

val site_down : schedule -> site:int -> at:Time.t -> bool

val next_up : schedule -> site:int -> at:Time.t -> Time.t option
(** The earliest instant [>= at] at which [site] is up, or [None] if it
    never recovers ([up = infinity] on the covering window). *)

val permanently_down : schedule -> site:int -> at:Time.t -> bool
(** The site is down at [at] and never recovers. *)

val failed_sites : schedule -> int list
(** Sites with at least one outage window, sorted. *)

val link_of : schedule -> int -> link_faults option
(** The fault entry for [dst]'s incoming link, if any. *)

val gray_sites : schedule -> int list
(** Sites with at least one slowdown or one-way-partition window, sorted —
    the sites that are degraded without ever being declared down. *)

val slow_factor : schedule -> site:int -> at:Time.t -> float
(** The combined CPU/disk service-time multiplier for work starting at [at]
    on [site]: the product of the factors of every covering slowdown window
    (1.0 when none covers). *)

val one_way_cut : schedule -> src:int option -> dst:int -> at:Time.t -> bool
(** Whether an asymmetric partition cuts a transfer travelling [src -> dst]
    at instant [at]: an [Inbound] partition of [dst] or (when [src] is
    known) an [Outbound] partition of [src]. *)

val drop_draw : schedule -> dst:int -> label:string -> start:Time.t -> p:float -> bool
(** The deterministic per-transfer loss draw: a pure hash of [(seed, dst,
    label, start)] against probability [p]. Exposed for tests. *)

val jitter_draw : schedule -> dst:int -> label:string -> start:Time.t -> float
(** The deterministic per-transfer jitter multiplier in
    [1, 1 + jitter_of_link): an independently-salted pure hash of the same
    transfer identity as {!drop_draw} (and with the same order-independence
    contract). 1.0 when the destination's link has no jitter. *)

val link_fate :
  schedule ->
  ?src:int ->
  dst:int ->
  label:string ->
  start:Time.t ->
  duration:Time.t ->
  unit ->
  Time.t * string option
(** The single shared interpretation of a link transfer, used by {!judge}
    and by host-side fate precomputation: the stretched duration (inflation
    x jitter) and [Some reason] when the transfer is doomed — destination
    down at the stretched finish (["site N down"]), a one-way partition
    cutting the direction of travel (["one-way partition into N"] checked at
    the finish, ["one-way partition out of N"] checked at the start), or the
    loss draw firing (["link to N lossy"]). *)

val judge : schedule -> Engine.judge
(** The engine interpretation. [Link] tasks go through {!link_fate}; [Cpu]
    and [Disk] tasks are stretched by {!slow_factor} at their start time and
    never dropped. *)

val install : schedule -> Engine.t -> unit
(** [Engine.set_judge] with {!judge} — a no-op for {!none}. *)

val flap_train :
  from:Time.t -> until:Time.t -> period:Time.t -> duty:float -> window list
(** A rapid down/up train: one window of length [duty x period] at the start
    of each period, from [from] until [until]. [duty] must be in (0, 1) and
    [period] positive; the result is valid as an [outages], [busy] or [cut]
    list. Raises [Invalid_argument] on malformed parameters. *)

val random :
  rng:Msdq_workload.Rng.t ->
  sites:int list ->
  availability:float ->
  horizon:Time.t ->
  ?drop:float ->
  ?inflate:float ->
  ?jitter:float ->
  ?slow:float ->
  ?flap:Time.t ->
  ?oneway:float ->
  unit ->
  schedule
(** A random recoverable schedule: each listed site is down for an expected
    fraction [1 - availability] of [0, horizon], as alternating up/down
    periods drawn from per-site streams ([Rng.split_ix] on the site's rank,
    so one site's windows never depend on another's draws). Every window
    recovers within the horizon. [drop]/[inflate]/[jitter] (default 0 / 1 /
    0) apply to every listed site's incoming link. [availability] must be in
    (0, 1]. Availability 1 yields no outage windows at all, so
    [~availability:1.0] with a non-zero [drop] builds a {e lossy-link-only}
    schedule: no site ever crashes, but messages are still lost — the chaos
    point that exercises retransmission and failover without any crash
    recovery. The schedule's drop seed is drawn from [rng].

    The gray knobs (all drawn from streams disjoint from the outage
    streams, so enabling them never changes the binary-fault plan):
    [slow > 1] gives every site slowdown windows with that factor;
    [flap] replaces the outage generator with {!flap_train} at the given
    period (duty [1 - availability], per-site phase shift); [oneway] is the
    probability each site additionally gets a one-way partition (direction
    drawn 50/50). Slowdown and partition windows cover an expected
    [1 - availability] of the horizon (one half when availability is 1). *)

val pp : Format.formatter -> schedule -> unit
