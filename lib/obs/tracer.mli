(** Span-based host tracing and Chrome [trace_event] export.

    Two kinds of spans end up in one trace file:
    - {e host} spans, recorded here with {!with_span} around real wall-clock
      work (building a strategy plan, serving checks, certifying);
    - {e simulated} spans, converted from the engine's {!Trace} entries by
      the exporter in [lib/exp].

    Both serialize as ["ph":"X"] complete events; [pid] groups lanes (one
    pid per simulated site, {!host_pid} for host spans), [tid] separates
    resources within a site. The output opens directly in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}. *)

type span = {
  name : string;
  cat : string;
  pid : int;
  tid : int;
  ts_us : float; (** start, microseconds *)
  dur_us : float;
  args : (string * string) list;
      (** free-form attributes: strategy, phase, site, db, … *)
}

type t
(** A span collector. Like {!Metrics.t}, one per run. *)

val host_pid : int
(** The [pid] lane used for host (wall-clock) spans: 999. *)

val create : ?enabled:bool -> ?clock:(unit -> float) -> unit -> t
(** [clock] returns microseconds; defaults to [Unix.gettimeofday]. Inject a
    fake clock for deterministic tests. *)

val disabled : t
(** A shared never-recording tracer; {!with_span} on it runs the thunk with
    no clock reads and no allocation. *)

val enabled : t -> bool

val with_span :
  t -> ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] times [f ()] and records a span, exception-safe.
    Nesting depth is recorded in the ["depth"] arg so hierarchies survive
    the flat event list. *)

val add : t -> span -> unit
(** Record a pre-built span (no-op when disabled). *)

val addf : t -> (unit -> span) -> unit
(** Lazy {!add}: the thunk is not invoked when the tracer is disabled. *)

val spans : t -> span list
(** Recorded spans, oldest first. *)

val count : t -> int

(** {2 Chrome export} *)

val span_event : span -> Json.t
(** One ["ph":"X"] complete event. *)

val flow_pair :
  id:int ->
  ?name:string ->
  ?cat:string ->
  src:int * int * float ->
  dst:int * int * float ->
  unit ->
  Json.t list
(** [flow_pair ~id ~src:(pid, tid, ts) ~dst:(pid', tid', ts') ()] is the
    ["ph":"s"] / ["ph":"f"] event pair of one causal flow arrow: viewers
    (Perfetto, [chrome://tracing]) draw it from the span enclosing the
    source point to the span enclosing the destination point. Both events
    share [id]; the finish event binds to the enclosing slice
    ([{"bp":"e"}]). *)

val chrome :
  ?process_names:(int * string) list -> ?thread_names:(int * int * string) list ->
  ?extra:Json.t list -> span list -> Json.t
(** Full trace document:
    [{"traceEvents": [...], "displayTimeUnit": "ms"}].
    [process_names] and [thread_names] become ["ph":"M"] metadata events so
    viewers label the lanes; [extra] events (e.g. {!flow_pair} arrows) are
    appended after the spans. *)
