type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- emission --- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Floats must be locale-independent and round-trippable; integral values
   print with a trailing ".0" so the reader can tell them from Int. *)
let float_repr x =
  if Float.is_nan x || x = Float.infinity || x = Float.neg_infinity then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.1f" x
  else
    let s = Printf.sprintf "%.12g" x in
    if Float.of_string s = x then s else Printf.sprintf "%.17g" x

let to_string ?indent v =
  let buf = Buffer.create 256 in
  let nl level =
    match indent with
    | None -> ()
    | Some n ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (n * level) ' ')
  in
  let sep_colon () =
    Buffer.add_char buf ':';
    if indent <> None then Buffer.add_char buf ' '
  in
  let rec emit level = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | Str s -> escape buf s
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          emit (level + 1) item)
        items;
      nl level;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          escape buf k;
          sep_colon ();
          emit (level + 1) item)
        fields;
      nl level;
      Buffer.add_char buf '}'
  in
  emit 0 v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* --- parsing --- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> error (Printf.sprintf "expected %c, got %c" c c')
    | None -> error (Printf.sprintf "expected %c, got end of input" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then (
      pos := !pos + l;
      v)
    else error ("invalid literal, expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then error "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then error "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > n then error "truncated \\u escape"
               else begin
                 let hex = String.sub s !pos 4 in
                 let code =
                   try int_of_string ("0x" ^ hex)
                   with _ -> error "bad \\u escape"
                 in
                 pos := !pos + 4;
                 (* Encode the code point as UTF-8; surrogate pairs are not
                    reassembled — our own emitter never produces them. *)
                 if code < 0x80 then Buffer.add_char buf (Char.chr code)
                 else if code < 0x800 then begin
                   Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                   Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                 end
                 else begin
                   Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                   Buffer.add_char buf
                     (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                   Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                 end
               end
             | c -> error (Printf.sprintf "bad escape \\%c" c));
          loop ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let had = ref false in
      while
        !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false
      do
        had := true;
        advance ()
      done;
      if not !had then error "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (advance (); Obj [])
      else begin
        let fields = ref [] in
        let rec fields_loop () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (key, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields_loop ()
          | Some '}' -> advance ()
          | _ -> error "expected , or } in object"
        in
        fields_loop ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (advance (); Arr [])
      else begin
        let items = ref [] in
        let rec items_loop () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items_loop ()
          | Some ']' -> advance ()
          | _ -> error "expected , or ] in array"
        in
        items_loop ();
        Arr (List.rev !items)
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "json parse error at byte %d: %s" at msg)

(* --- accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function Arr l -> Some l | _ -> None
let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
