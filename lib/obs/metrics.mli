(** A per-run metrics registry: named counters, gauges and histograms with
    label sets.

    This replaces the process-global [Meter] refs that used to make
    concurrent-query attribution unreliable: each {!Strategy.run} now owns
    its registry, so two interleaved queries can never bleed counts into
    each other. Series are identified by [(name, labels)]; labels are
    normalized (sorted by key) so label order at the call site does not
    create duplicate series. Registering the same name with a different
    metric type raises [Invalid_argument]. *)

type t
(** A registry. Not thread-safe; one per run. *)

type counter
type gauge
type histogram

val create : unit -> t

(** {2 Counters} — monotonically increasing integer series. *)

val counter : t -> ?labels:(string * string) list -> ?help:string -> string -> counter
(** [counter t name] finds or creates the series [(name, labels)]. *)

val inc : counter -> int -> unit
val value : counter -> int

(** {2 Gauges} — instantaneous float values. *)

val gauge : t -> ?labels:(string * string) list -> ?help:string -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** {2 Histograms} — bucketed observations with sum and count. *)

val histogram :
  t ->
  ?labels:(string * string) list ->
  ?help:string ->
  ?buckets:float array ->
  string ->
  histogram
(** [buckets] are strictly increasing upper bounds; an implicit [+inf]
    overflow bucket is always appended. Defaults to decades from 1 to 1e7
    (microsecond-friendly). Raises [Invalid_argument] on non-increasing
    bounds. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val histogram_max : histogram -> float
(** Largest observation so far; [0.0] while the histogram is empty. *)

val quantile : histogram -> float -> float
(** [quantile h q] is the bucket-interpolated [q]-quantile estimate
    (Prometheus-style: linear interpolation inside the bucket the rank
    falls in; the overflow bucket is capped at {!histogram_max}). Total:
    an empty histogram yields [0.0], never NaN; [q] is clamped to
    [0, 1]. *)

val cumulative_buckets : histogram -> (float * int) list
(** [(le, count)] pairs in Prometheus style: [count] is the number of
    observations [<= le], cumulative; the final pair has [le = infinity]
    and equals {!histogram_count}. *)

(** {2 Registry queries} *)

val total : t -> string -> int
(** Sum of every counter series named [name] across all label sets. *)

val find_counter : t -> ?labels:(string * string) list -> string -> int option
(** Value of one specific counter series, if registered. *)

val counters : t -> (string * (string * string) list * int) list
(** All counter series as [(name, labels, value)], sorted by name then
    labels — the stable order used by {!to_json}. *)

val histograms : t -> (string * (string * string) list * histogram) list
(** All histogram series as [(name, labels, histogram)], in the same
    stable order. *)

val find_histogram :
  t -> ?labels:(string * string) list -> string -> histogram option
(** One specific histogram series, if registered. *)

val series_count : t -> int
(** Number of distinct [(name, labels)] series of any type — the registry's
    label cardinality. *)

val to_json : t -> Json.t
(** Deterministic export:
    [{"counters": [{"name", "labels", "value"}...],
      "gauges": [...],
      "histograms": [{"name", "labels", "count", "sum", "max", "buckets": [{"le", "count"}...]}...]}]
    sorted by name then labels. *)
