(** A minimal JSON tree with a deterministic emitter and a strict parser.

    The repo deliberately carries no third-party JSON dependency; everything
    the observability layer exports (run reports, Chrome traces, bench
    trajectories) goes through this module. Emission is stable: object fields
    are printed in the order given, floats use a locale-independent
    representation, and the same tree always produces the same bytes — which
    is what makes golden-file tests meaningful. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Serialize. With [indent] (spaces per level) the output is pretty-printed;
    without it the output is compact. NaN and infinities emit as [null] —
    the trace viewers we target reject bare [NaN] tokens. *)

val pp : Format.formatter -> t -> unit
(** [pp] prints the compact form. *)

val of_string : string -> (t, string) result
(** Strict parser for the grammar emitted by {!to_string} (standard JSON).
    Numbers without [.], [e] or [E] that fit in an OCaml [int] parse as
    [Int]; everything else numeric parses as [Float]. Errors carry a byte
    offset. *)

(** {2 Accessors} — tiny combinators for tests and schema validation. *)

val member : string -> t -> t option
(** [member key j] is the value under [key] if [j] is an object. *)

val to_list : t -> t list option
val to_int : t -> int option
val to_float : t -> float option
(** [to_float] accepts both [Int] and [Float]. *)

val to_str : t -> string option
val to_bool : t -> bool option
