type span = {
  name : string;
  cat : string;
  pid : int;
  tid : int;
  ts_us : float;
  dur_us : float;
  args : (string * string) list;
}

type t = {
  on : bool;
  clock : unit -> float;
  mutable rev_spans : span list;
  mutable depth : int;
  mutable n : int;
}

let host_pid = 999

let default_clock () = Unix.gettimeofday () *. 1e6

let create ?(enabled = true) ?(clock = default_clock) () =
  { on = enabled; clock; rev_spans = []; depth = 0; n = 0 }

let disabled = create ~enabled:false ~clock:(fun () -> 0.0) ()

let enabled t = t.on

let push t s =
  t.rev_spans <- s :: t.rev_spans;
  t.n <- t.n + 1

let add t s = if t.on then push t s
let addf t f = if t.on then push t (f ())

let with_span t ?(cat = "host") ?(args = []) name f =
  if not t.on then f ()
  else begin
    let depth = t.depth in
    t.depth <- depth + 1;
    let t0 = t.clock () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = t.clock () in
        t.depth <- depth;
        push t
          {
            name;
            cat;
            pid = host_pid;
            tid = 0;
            ts_us = t0;
            dur_us = t1 -. t0;
            args = ("depth", string_of_int depth) :: args;
          })
      f
  end

let spans t = List.rev t.rev_spans
let count t = t.n

let span_event s =
  Json.Obj
    [
      ("name", Json.Str s.name);
      ("cat", Json.Str (if s.cat = "" then "task" else s.cat));
      ("ph", Json.Str "X");
      ("ts", Json.Float s.ts_us);
      ("dur", Json.Float s.dur_us);
      ("pid", Json.Int s.pid);
      ("tid", Json.Int s.tid);
      ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.args));
    ]

(* A flow arrow between two lanes: a ["ph":"s"] start event at the source
   point and a ["ph":"f"] (binding point "e": enclosing slice) finish event
   at the destination, tied together by [id]. Viewers draw the arrow from
   the span enclosing the start point to the span enclosing the finish. *)
let flow_pair ~id ?(name = "dep") ?(cat = "flow") ~src:(spid, stid, sts)
    ~dst:(dpid, dtid, dts) () =
  let event ph extra =
    Json.Obj
      ([
         ("name", Json.Str name);
         ("cat", Json.Str cat);
         ("ph", Json.Str ph);
         ("id", Json.Int id);
       ]
      @ extra)
  in
  [
    event "s"
      [ ("ts", Json.Float sts); ("pid", Json.Int spid); ("tid", Json.Int stid) ];
    event "f"
      [
        ("bp", Json.Str "e");
        ("ts", Json.Float dts);
        ("pid", Json.Int dpid);
        ("tid", Json.Int dtid);
      ];
  ]

let metadata ~name ~pid ~tid ~value =
  Json.Obj
    [
      ("name", Json.Str name);
      ("ph", Json.Str "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.Str value) ]);
    ]

let chrome ?(process_names = []) ?(thread_names = []) ?(extra = []) spans =
  let procs =
    List.map
      (fun (pid, v) -> metadata ~name:"process_name" ~pid ~tid:0 ~value:v)
      process_names
  in
  let threads =
    List.map
      (fun (pid, tid, v) -> metadata ~name:"thread_name" ~pid ~tid ~value:v)
      thread_names
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.Arr (procs @ threads @ List.map span_event spans @ extra) );
      ("displayTimeUnit", Json.Str "ms");
    ]
