type counter = int ref
type gauge = float ref

type histogram = {
  bounds : float array; (* strictly increasing upper bounds *)
  counts : int array; (* length = Array.length bounds + 1 (overflow) *)
  mutable sum : float;
  mutable n : int;
  mutable hmax : float; (* largest observation; 0.0 while empty *)
}

type cell = Counter of counter | Gauge of gauge | Hist of histogram

type series = {
  s_name : string;
  s_labels : (string * string) list; (* sorted by key *)
  s_help : string;
  s_cell : cell;
}

type t = { tbl : (string * (string * string) list, series) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let normalize labels =
  List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) labels

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Hist _ -> "histogram"

let series t ~name ~labels ~help make =
  let labels = normalize labels in
  match Hashtbl.find_opt t.tbl (name, labels) with
  | Some s -> s
  | None ->
    let s = { s_name = name; s_labels = labels; s_help = help; s_cell = make () } in
    Hashtbl.replace t.tbl (name, labels) s;
    s

let type_clash name found wanted =
  invalid_arg
    (Printf.sprintf "Metrics: %s is a %s, requested as %s" name
       (kind_name found) wanted)

let counter t ?(labels = []) ?(help = "") name =
  let s = series t ~name ~labels ~help (fun () -> Counter (ref 0)) in
  match s.s_cell with Counter c -> c | other -> type_clash name other "counter"

let inc c n = c := !c + n
let value c = !c

let gauge t ?(labels = []) ?(help = "") name =
  let s = series t ~name ~labels ~help (fun () -> Gauge (ref 0.0)) in
  match s.s_cell with Gauge g -> g | other -> type_clash name other "gauge"

let set g v = g := v
let gauge_value g = !g

let default_buckets = [| 1.0; 10.0; 100.0; 1e3; 1e4; 1e5; 1e6; 1e7 |]

let histogram t ?(labels = []) ?(help = "") ?(buckets = default_buckets) name =
  Array.iteri
    (fun i b ->
      if i > 0 && b <= buckets.(i - 1) then
        invalid_arg
          (Printf.sprintf "Metrics: %s bucket bounds must be increasing" name))
    buckets;
  let make () =
    Hist
      {
        bounds = Array.copy buckets;
        counts = Array.make (Array.length buckets + 1) 0;
        sum = 0.0;
        n = 0;
        hmax = 0.0;
      }
  in
  let s = series t ~name ~labels ~help make in
  match s.s_cell with Hist h -> h | other -> type_clash name other "histogram"

let observe h x =
  let nb = Array.length h.bounds in
  let rec slot i = if i >= nb then nb else if x <= h.bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum <- h.sum +. x;
  h.n <- h.n + 1;
  if x > h.hmax then h.hmax <- x

let histogram_count h = h.n
let histogram_sum h = h.sum
let histogram_max h = h.hmax

(* Bucket-interpolated quantile estimate, Prometheus-style: find the bucket
   the q-th observation falls in and interpolate linearly inside it. The
   overflow bucket is capped at the recorded maximum. Empty histograms
   yield 0.0 — never NaN. *)
let quantile h q =
  if h.n = 0 then 0.0
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let rank = q *. float_of_int h.n in
    let nb = Array.length h.bounds in
    let rec go i seen =
      if i > nb then h.hmax
      else
        let here = h.counts.(i) in
        let upto = seen + here in
        if float_of_int upto >= rank && here > 0 then
          let lo = if i = 0 then 0.0 else h.bounds.(i - 1) in
          let hi = if i = nb then h.hmax else h.bounds.(i) in
          let hi = Float.max lo hi in
          lo +. ((hi -. lo) *. ((rank -. float_of_int seen) /. float_of_int here))
        else go (i + 1) upto
    in
    go 0 0
  end

let cumulative_buckets h =
  let acc = ref 0 in
  let below =
    Array.to_list
      (Array.mapi
         (fun i le ->
           acc := !acc + h.counts.(i);
           (le, !acc))
         h.bounds)
  in
  below @ [ (Float.infinity, h.n) ]

let compare_labels a b =
  List.compare
    (fun (k1, v1) (k2, v2) ->
      match String.compare k1 k2 with 0 -> String.compare v1 v2 | c -> c)
    a b

let sorted_series t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.tbl []
  |> List.sort (fun a b ->
         match String.compare a.s_name b.s_name with
         | 0 -> compare_labels a.s_labels b.s_labels
         | c -> c)

let total t name =
  Hashtbl.fold
    (fun (n, _) s acc ->
      match s.s_cell with
      | Counter c when String.equal n name -> acc + !c
      | _ -> acc)
    t.tbl 0

let find_counter t ?(labels = []) name =
  match Hashtbl.find_opt t.tbl (name, normalize labels) with
  | Some { s_cell = Counter c; _ } -> Some !c
  | _ -> None

let counters t =
  List.filter_map
    (fun s ->
      match s.s_cell with
      | Counter c -> Some (s.s_name, s.s_labels, !c)
      | _ -> None)
    (sorted_series t)

let histograms t =
  List.filter_map
    (fun s ->
      match s.s_cell with
      | Hist h -> Some (s.s_name, s.s_labels, h)
      | _ -> None)
    (sorted_series t)

let find_histogram t ?(labels = []) name =
  match Hashtbl.find_opt t.tbl (name, normalize labels) with
  | Some { s_cell = Hist h; _ } -> Some h
  | _ -> None

let series_count t = Hashtbl.length t.tbl

let labels_json labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let to_json t =
  let all = sorted_series t in
  let pick f = List.filter_map f all in
  let counters =
    pick (fun s ->
        match s.s_cell with
        | Counter c ->
          Some
            (Json.Obj
               [
                 ("name", Json.Str s.s_name);
                 ("labels", labels_json s.s_labels);
                 ("value", Json.Int !c);
               ])
        | _ -> None)
  in
  let gauges =
    pick (fun s ->
        match s.s_cell with
        | Gauge g ->
          Some
            (Json.Obj
               [
                 ("name", Json.Str s.s_name);
                 ("labels", labels_json s.s_labels);
                 ("value", Json.Float !g);
               ])
        | _ -> None)
  in
  let histograms =
    pick (fun s ->
        match s.s_cell with
        | Hist h ->
          Some
            (Json.Obj
               [
                 ("name", Json.Str s.s_name);
                 ("labels", labels_json s.s_labels);
                 ("count", Json.Int h.n);
                 ("sum", Json.Float h.sum);
                 ("max", Json.Float h.hmax);
                 ( "buckets",
                   Json.Arr
                     (List.map
                        (fun (le, c) ->
                          let le_json =
                            if le = Float.infinity then Json.Str "+Inf"
                            else Json.Float le
                          in
                          Json.Obj
                            [ ("le", le_json); ("count", Json.Int c) ])
                        (cumulative_buckets h)) );
               ])
        | _ -> None)
  in
  Json.Obj
    [
      ("counters", Json.Arr counters);
      ("gauges", Json.Arr gauges);
      ("histograms", Json.Arr histograms);
    ]
