(** Critical-path analysis over an engine trace.

    The engine records, for every task, both its causal dependency edges
    ([Trace.entry.deps]) and its resource placement. Because every FIFO
    resource is work-conserving, a task's start instant is exactly
    [max (latest dependency finish) (instant its resource freed)] — so
    walking back along the later of the two from the last-finishing task
    reconstructs the chain of spans that actually determined the response
    time. The per-hop [wait_us] is queueing/idle time in front of the hop;
    the sum of [dur_us + wait_us] over the path equals the response time
    (pinned by a unit test). *)

open Msdq_simkit

type hop = {
  tid : int;
  label : string;
  site : int option;  (** [None] for fences/delays *)
  kind : Resource.kind option;
  phase : string option;  (** the task's ["phase"] attr, when tagged *)
  start_us : float;
  dur_us : float;
  wait_us : float;
      (** gap between the previous hop's finish and this hop's start:
          queueing behind the resource, retransmission backoff, or
          admission delay *)
}

type report = {
  response_us : float;
  path : hop list;  (** oldest first; ends at the last-finishing task *)
  dominant_site : int option;
      (** the site whose on-path busy time is largest *)
  dominant_kind : Resource.kind option;
  dominant_phase : string option;
}

val empty : report

val analyze : Trace.entry list -> report
(** Total: an empty trace yields {!empty}. *)

val total_us : report -> float
(** Sum of [dur_us + wait_us] over the path — equals [response_us] for a
    trace that starts at simulated time zero. *)

val to_json : report -> Msdq_obs.Json.t

val pp : Format.formatter -> report -> unit
