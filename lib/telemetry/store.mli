(** Persistent cross-run statistics: the observed inputs the adaptive AUTO
    strategy selector will consume (ROADMAP item 2).

    One store holds EWMA-style aggregates keyed by
    [(db, site, link, strategy)]: observed check latency, drop rate, cache
    hit rate, and demotion counts. Within a run, {!observe} accumulates a
    plain sample-weighted mean per key; across runs, {!merge} folds a fresh
    run's store into a loaded one, discounting the past by [alpha]
    (retention factor). At [alpha = 1] the merge is the plain weighted
    mean — commutative and associative, so merging runs in any order gives
    the same store (qcheck-pinned); at [alpha < 1] older runs decay every
    time fresher data arrives for their key.

    The on-disk format is versioned JSON ([msdq-telemetry/1]) written
    deterministically (entries sorted by key), so
    [save → load → merge identity] is byte-stable. *)

type key = { db : string; site : int; link : int; strategy : string }

type sample = {
  weight : float;  (** how many query observations this aggregates *)
  check_latency_us : float;  (** mean observed check/query latency *)
  drop_rate : float;  (** dropped transfers / messages sent, in [0, 1] *)
  cache_hit_rate : float;  (** cache hits / lookups, in [0, 1] *)
  demotions : float;  (** mean rows demoted to uncertified maybe *)
}

type t

val schema : string
(** ["msdq-telemetry/1"]. *)

val default_alpha : float
(** [0.7]: each merge keeps 70% of the accumulated past weight. *)

val create : ?alpha:float -> unit -> t
(** Raises [Invalid_argument] when [alpha] is outside [0, 1]. *)

val alpha : t -> float

val runs : t -> int
(** How many runs this store aggregates. *)

val record_run : t -> unit
(** Count one run into {!runs} (call once per recorded run). *)

val size : t -> int

val observe : t -> key -> sample -> unit
(** Accumulate one observation (weighted mean within the run). Raises
    [Invalid_argument] on a negative or non-finite weight. *)

val find : t -> key -> sample option

val entries : t -> (key * sample) list
(** Sorted by key — the deterministic order {!to_json} uses. *)

val fold : (key -> sample -> 'a -> 'a) -> t -> 'a -> 'a

val strategy_latency : t -> strategy:string -> (float * float) option
(** [(mean latency in us, total observation weight)] aggregated over every
    entry keyed with [strategy] — the estimator read path the AUTO
    selector blends with its model predictions. [None] when the store has
    no positive-weight observation for the strategy. *)

val link_latency : t -> site:int -> (float * float) option
(** [(mean check-leg latency in us, total observation weight)] for the
    link into [site], aggregated over the per-link entries recorded under
    the marker key [{db = "link"; link = site; strategy = "*"}]. The
    wildcard strategy keeps these entries out of {!strategy_latency}'s
    rollups (a one-way leg and a whole-query response live on different
    clocks). [None] when nothing was observed for the link. *)

val latency_of : t -> site:int -> float option
(** [Option.map fst (link_latency t ~site)] — shaped for
    [Msdq_exec.Strategy.options.latency_of]: partially applied on the
    store, it is exactly the closure adaptive timeouts consult. *)

val merge : ?alpha:float -> t -> t -> t
(** [merge old fresh] — see the module description. [alpha] defaults to
    [old]'s stored alpha. Run counts add; entries present on only one side
    are kept verbatim. *)

(** {2 Persistence} *)

val to_json : t -> Msdq_obs.Json.t
val of_json : Msdq_obs.Json.t -> (t, string) result

val to_string : t -> string
(** Pretty-printed JSON document, trailing newline included — the exact
    bytes {!save} writes. *)

val of_string : string -> (t, string) result

val save : t -> string -> unit
val load : string -> (t, string) result

val pp : Format.formatter -> t -> unit
