module Json = Msdq_obs.Json
module Metrics = Msdq_obs.Metrics

(* Prometheus/OpenMetrics text exposition: label values escape backslash,
   double quote and newline. *)
let escape v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let labels_str ?extra labels =
  let labels = match extra with None -> labels | Some kv -> labels @ [ kv ] in
  match labels with
  | [] -> ""
  | kvs ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape v)) kvs)
    ^ "}"

let num x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%g" x

let render_store buf store =
  let family name help line_of =
    Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" name);
    List.iter
      (fun (k, (v : Store.sample)) ->
        let labels =
          labels_str
            [
              ("db", k.Store.db);
              ("site", string_of_int k.Store.site);
              ("link", string_of_int k.Store.link);
              ("strategy", k.Store.strategy);
            ]
        in
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s\n" name labels (num (line_of v))))
      (Store.entries store)
  in
  Buffer.add_string buf
    (Printf.sprintf "# HELP msdq_store_runs runs aggregated by the store\n");
  Buffer.add_string buf "# TYPE msdq_store_runs gauge\n";
  Buffer.add_string buf
    (Printf.sprintf "msdq_store_runs %d\n" (Store.runs store));
  family "msdq_store_check_latency_us" "EWMA observed check latency"
    (fun s -> s.Store.check_latency_us);
  family "msdq_store_drop_rate" "EWMA observed drop rate" (fun s ->
      s.Store.drop_rate);
  family "msdq_store_cache_hit_rate" "EWMA observed cache hit rate" (fun s ->
      s.Store.cache_hit_rate);
  family "msdq_store_demotions" "EWMA rows demoted per query" (fun s ->
      s.Store.demotions)

(* The registry serializes deterministically ({!Metrics.to_json}: sorted by
   name then labels, one section per metric type); rendering from that tree
   keeps this exporter decoupled from the registry internals. *)
let render ?store reg =
  let j = Metrics.to_json reg in
  let buf = Buffer.create 1024 in
  let section sec emit =
    match Option.bind (Json.member sec j) Json.to_list with
    | None -> ()
    | Some items ->
      let last_family = ref "" in
      List.iter
        (fun item ->
          let name =
            match Option.bind (Json.member "name" item) Json.to_str with
            | Some n -> n
            | None -> ""
          in
          let labels =
            match Json.member "labels" item with
            | Some (Json.Obj kvs) ->
              List.filter_map
                (fun (k, v) -> Option.map (fun v -> (k, v)) (Json.to_str v))
                kvs
            | _ -> []
          in
          if name <> !last_family then begin
            last_family := name;
            Buffer.add_string buf
              (Printf.sprintf "# TYPE %s %s\n" name
                 (match sec with
                 | "counters" -> "counter"
                 | "gauges" -> "gauge"
                 | _ -> "histogram"))
          end;
          emit item name labels)
        items
  in
  section "counters" (fun item name labels ->
      let v =
        match Option.bind (Json.member "value" item) Json.to_int with
        | Some v -> v
        | None -> 0
      in
      Buffer.add_string buf
        (Printf.sprintf "%s%s %d\n" name (labels_str labels) v));
  section "gauges" (fun item name labels ->
      let v =
        match Option.bind (Json.member "value" item) Json.to_float with
        | Some v -> v
        | None -> 0.0
      in
      Buffer.add_string buf
        (Printf.sprintf "%s%s %s\n" name (labels_str labels) (num v)));
  section "histograms" (fun item name labels ->
      (match Option.bind (Json.member "buckets" item) Json.to_list with
      | None -> ()
      | Some buckets ->
        List.iter
          (fun b ->
            let le =
              match Json.member "le" b with
              | Some (Json.Str s) -> s
              | Some (Json.Float f) -> num f
              | Some (Json.Int i) -> string_of_int i
              | _ -> "+Inf"
            in
            let c =
              match Option.bind (Json.member "count" b) Json.to_int with
              | Some c -> c
              | None -> 0
            in
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" name
                 (labels_str ~extra:("le", le) labels)
                 c))
          buckets);
      let float_field f =
        match Option.bind (Json.member f item) Json.to_float with
        | Some v -> v
        | None -> 0.0
      in
      let int_field f =
        match Option.bind (Json.member f item) Json.to_int with
        | Some v -> v
        | None -> 0
      in
      Buffer.add_string buf
        (Printf.sprintf "%s_sum%s %s\n" name (labels_str labels)
           (num (float_field "sum")));
      Buffer.add_string buf
        (Printf.sprintf "%s_count%s %d\n" name (labels_str labels)
           (int_field "count")));
  (match store with None -> () | Some s -> render_store buf s);
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf
