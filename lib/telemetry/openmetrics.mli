(** OpenMetrics-style text exposition of a metrics registry.

    [render reg] walks the registry's deterministic JSON dump and emits the
    Prometheus text format: one [# TYPE] line per family, then one sample
    line per series, histogram series expanded into cumulative [_bucket]
    lines plus [_sum]/[_count], terminated by [# EOF]. Output order is the
    registry's stable (name, labels) order, so the text is byte-stable for
    a deterministic run.

    With [?store], the persistent statistics store's aggregates are
    appended as [msdq_store_*] gauge families labelled
    [{db, site, link, strategy}]. *)

val render : ?store:Store.t -> Msdq_obs.Metrics.t -> string

val escape : string -> string
(** Label-value escaping (backslash, double quote, newline) — exposed for
    tests. *)
