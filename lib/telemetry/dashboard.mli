(** Pure TTY dashboard renderer for the serve path.

    A {!frame} is one snapshot of the workload engine's state (admitted and
    completed queries, cache hit rates, breaker states, latency quantiles);
    {!render} turns it into a boxed ASCII view. The driver in [bin/msdq]
    replays the run's completion events frame by frame on a TTY (prefixing
    {!clear}), or prints the final frame once when stdout is not a TTY
    (CI). Rendering is pure, so frames are unit-testable. *)

open Msdq_simkit

type frame = {
  now_us : float;  (** simulated instant the frame depicts *)
  admitted : int;
  completed : int;
  total : int;
  extent_hits : int;
  extent_lookups : int;
  verdict_hits : int;
  verdict_lookups : int;
  breakers_open : int;
  messages : int;
  shed : int;  (** queries the admission queue refused so far *)
  deadline_demotions : int;
      (** rows demoted because their checks were abandoned at a deadline *)
  gray_slow_legs : int;
      (** delivered check legs the gray detector counted as slow *)
  gray_fallbacks : int;
      (** AUTO decisions re-routed to CA because a check site was gray *)
  latency : Stats.summary;  (** over the queries completed so far *)
  per_strategy : (string * int * int) list;
      (** [(strategy, admitted, completed)] rows *)
}

val clear : string
(** ANSI home + clear-screen prefix for live redraws. *)

val render : ?width:int -> frame -> string
(** Deterministic multi-line view of one frame. *)
