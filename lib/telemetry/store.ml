module Json = Msdq_obs.Json

let schema = "msdq-telemetry/1"
let default_alpha = 0.7

type key = { db : string; site : int; link : int; strategy : string }

type sample = {
  weight : float;
  check_latency_us : float;
  drop_rate : float;
  cache_hit_rate : float;
  demotions : float;
}

type t = {
  alpha : float;
  mutable runs : int;
  tbl : (key, sample) Hashtbl.t;
}

let create ?(alpha = default_alpha) () =
  if not (Float.is_finite alpha) || alpha < 0.0 || alpha > 1.0 then
    invalid_arg "Telemetry.Store: alpha must be inside [0, 1]";
  { alpha; runs = 0; tbl = Hashtbl.create 16 }

let alpha t = t.alpha
let runs t = t.runs
let record_run t = t.runs <- t.runs + 1
let size t = Hashtbl.length t.tbl
let find t key = Hashtbl.find_opt t.tbl key

(* Weighted mean of two samples, [wa] discounted by [retain]. *)
let blend ~retain a b =
  let wa = retain *. a.weight and wb = b.weight in
  let w = wa +. wb in
  if w <= 0.0 then { b with weight = 0.0 }
  else
    let mix fa fb = ((wa *. fa) +. (wb *. fb)) /. w in
    {
      weight = w;
      check_latency_us = mix a.check_latency_us b.check_latency_us;
      drop_rate = mix a.drop_rate b.drop_rate;
      cache_hit_rate = mix a.cache_hit_rate b.cache_hit_rate;
      demotions = mix a.demotions b.demotions;
    }

let observe t key sample =
  if sample.weight < 0.0 || not (Float.is_finite sample.weight) then
    invalid_arg "Telemetry.Store.observe: weight must be non-negative and finite";
  match Hashtbl.find_opt t.tbl key with
  | None -> Hashtbl.replace t.tbl key sample
  (* Within one run, observations accumulate as a plain weighted mean:
     the EWMA discount only applies across runs, in {!merge}. *)
  | Some old -> Hashtbl.replace t.tbl key (blend ~retain:1.0 old sample)

let compare_keys a b =
  match String.compare a.db b.db with
  | 0 -> (
    match compare a.site b.site with
    | 0 -> (
      match compare a.link b.link with
      | 0 -> String.compare a.strategy b.strategy
      | c -> c)
    | c -> c)
  | c -> c

let entries t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare_keys a b)

let fold f t init = List.fold_left (fun acc (k, v) -> f k v acc) init (entries t)

(* Estimator read path: the weighted mean latency observed for a strategy,
   aggregated over every key that carries it (serve-level rollups use the
   wildcard key [{db = "*"; site = 0; link = 0}], but per-link entries
   contribute too — weight does the bookkeeping). *)
let strategy_latency t ~strategy =
  let w, acc =
    Hashtbl.fold
      (fun k v (w, acc) ->
        if String.equal k.strategy strategy && v.weight > 0.0 then
          (w +. v.weight, acc +. (v.weight *. v.check_latency_us))
        else (w, acc))
      t.tbl (0.0, 0.0)
  in
  if w > 0.0 then Some (acc /. w, w) else None

(* Per-link read path: entries recorded under the marker key
   [{db = "link"; link = site; strategy = "*"}]. The wildcard strategy
   keeps them out of {!strategy_latency}'s rollups — a one-way leg latency
   and a whole-query response live on different clocks. *)
let link_latency t ~site =
  let w, acc =
    Hashtbl.fold
      (fun k v (w, acc) ->
        if String.equal k.db "link" && k.link = site && v.weight > 0.0 then
          (w +. v.weight, acc +. (v.weight *. v.check_latency_us))
        else (w, acc))
      t.tbl (0.0, 0.0)
  in
  if w > 0.0 then Some (acc /. w, w) else None

let latency_of t ~site = Option.map fst (link_latency t ~site)

(* Cross-run merge. [alpha] is the retention of the older store's sample
   weight: entries present on both sides combine as a weighted mean with
   the old side's weight scaled by [alpha], entries present on one side
   only are kept verbatim. At [alpha = 1] the merge degenerates to the
   plain sample-weighted mean, which is commutative and associative —
   the order-insensitivity the qcheck property pins; at [alpha < 1] the
   past decays by [alpha] each time fresher data arrives for its key. *)
let merge ?alpha:a old fresh =
  let alpha = match a with Some a -> a | None -> old.alpha in
  if not (Float.is_finite alpha) || alpha < 0.0 || alpha > 1.0 then
    invalid_arg "Telemetry.Store.merge: alpha must be inside [0, 1]";
  let out = { alpha = old.alpha; runs = old.runs + fresh.runs; tbl = Hashtbl.create 16 } in
  Hashtbl.iter (fun k v -> Hashtbl.replace out.tbl k v) old.tbl;
  Hashtbl.iter
    (fun k fresh_v ->
      match Hashtbl.find_opt out.tbl k with
      | None -> Hashtbl.replace out.tbl k fresh_v
      | Some old_v -> Hashtbl.replace out.tbl k (blend ~retain:alpha old_v fresh_v))
    fresh.tbl;
  out

(* ---- JSON ---- *)

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("alpha", Json.Float t.alpha);
      ("runs", Json.Int t.runs);
      ( "entries",
        Json.Arr
          (List.map
             (fun (k, v) ->
               Json.Obj
                 [
                   ("db", Json.Str k.db);
                   ("site", Json.Int k.site);
                   ("link", Json.Int k.link);
                   ("strategy", Json.Str k.strategy);
                   ("weight", Json.Float v.weight);
                   ("check_latency_us", Json.Float v.check_latency_us);
                   ("drop_rate", Json.Float v.drop_rate);
                   ("cache_hit_rate", Json.Float v.cache_hit_rate);
                   ("demotions", Json.Float v.demotions);
                 ])
             (entries t)) );
    ]

let ( let* ) r f = Result.bind r f

let req_of what conv name j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "telemetry store: %s needs %S" what name)

let of_json j =
  let* s = req_of "document" Json.to_str "schema" j in
  if s <> schema then
    Error (Printf.sprintf "telemetry store: unsupported schema %S (want %S)" s schema)
  else
    let* alpha = req_of "document" Json.to_float "alpha" j in
    let* runs = req_of "document" Json.to_int "runs" j in
    let* entries =
      match Option.bind (Json.member "entries" j) Json.to_list with
      | Some l -> Ok l
      | None -> Error "telemetry store: document needs \"entries\""
    in
    let t = create ~alpha () in
    t.runs <- runs;
    let* () =
      List.fold_left
        (fun acc e ->
          let* () = acc in
          let* db = req_of "entry" Json.to_str "db" e in
          let* site = req_of "entry" Json.to_int "site" e in
          let* link = req_of "entry" Json.to_int "link" e in
          let* strategy = req_of "entry" Json.to_str "strategy" e in
          let* weight = req_of "entry" Json.to_float "weight" e in
          let* check_latency_us = req_of "entry" Json.to_float "check_latency_us" e in
          let* drop_rate = req_of "entry" Json.to_float "drop_rate" e in
          let* cache_hit_rate = req_of "entry" Json.to_float "cache_hit_rate" e in
          let* demotions = req_of "entry" Json.to_float "demotions" e in
          Hashtbl.replace t.tbl { db; site; link; strategy }
            { weight; check_latency_us; drop_rate; cache_hit_rate; demotions };
          Ok ())
        (Ok ()) entries
    in
    Ok t

let to_string t = Json.to_string ~indent:2 (to_json t) ^ "\n"

let of_string s =
  let* j = Json.of_string s in
  of_json j

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | s -> of_string s

let pp ppf t =
  Format.fprintf ppf "@[<v>telemetry store: %d run(s), %d entr(ies), alpha %.2f@,"
    t.runs (size t) t.alpha;
  List.iter
    (fun (k, v) ->
      Format.fprintf ppf
        "  %-10s site%d link%d %-4s  lat %8.0f us  drop %5.3f  hit %5.3f  demoted %.2f  (w %.1f)@,"
        k.db k.site k.link k.strategy v.check_latency_us v.drop_rate
        v.cache_hit_rate v.demotions v.weight)
    (entries t);
  Format.fprintf ppf "@]"
