open Msdq_simkit

type hop = {
  tid : int;
  label : string;
  site : int option;
  kind : Resource.kind option;
  phase : string option;
  start_us : float;
  dur_us : float;
  wait_us : float;
}

type report = {
  response_us : float;
  path : hop list;
  dominant_site : int option;
  dominant_kind : Resource.kind option;
  dominant_phase : string option;
}

let empty =
  {
    response_us = 0.0;
    path = [];
    dominant_site = None;
    dominant_kind = None;
    dominant_phase = None;
  }

let us = Time.to_us

(* The predecessor that actually gated [e]'s start: among its causal
   dependencies and the task that held its FIFO resource right before it,
   the one finishing last. The engine is work-conserving, so
   [e.start = max (latest dep finish) (resource free instant)] — walking
   to the argmax therefore reconstructs the true critical chain. *)
let gating_pred ~by_tid ~resource_pred (e : Trace.entry) =
  let dep_entries = List.filter_map (fun d -> Hashtbl.find_opt by_tid d) e.deps in
  let candidates =
    match resource_pred e with Some p -> p :: dep_entries | None -> dep_entries
  in
  List.fold_left
    (fun best (c : Trace.entry) ->
      match best with
      | None -> Some c
      | Some (b : Trace.entry) ->
        if
          Time.compare c.finish b.finish > 0
          || (Time.compare c.finish b.finish = 0 && c.tid > b.tid)
        then Some c
        else best)
    None candidates

let analyze entries =
  match entries with
  | [] -> empty
  | entries ->
    let by_tid = Hashtbl.create 64 in
    List.iter (fun (e : Trace.entry) -> Hashtbl.add by_tid e.Trace.tid e) entries;
    (* Per-resource occupancy, in start order: FIFO resources run their
       tasks back to back, so the previous occupant is a gating candidate
       even without an explicit dependency edge. *)
    let by_rsrc = Hashtbl.create 16 in
    List.iter
      (fun (e : Trace.entry) ->
        match (e.site, e.kind) with
        | Some s, Some k ->
          let prev = try Hashtbl.find by_rsrc (s, k) with Not_found -> [] in
          Hashtbl.replace by_rsrc (s, k) (e :: prev)
        | _ -> ())
      entries;
    Hashtbl.iter
      (fun key es ->
        Hashtbl.replace by_rsrc key
          (List.sort
             (fun (a : Trace.entry) (b : Trace.entry) ->
               match Time.compare a.start b.start with
               | 0 -> compare a.tid b.tid
               | c -> c)
             es))
      by_rsrc;
    let resource_pred (e : Trace.entry) =
      match (e.site, e.kind) with
      | Some s, Some k ->
        let es = try Hashtbl.find by_rsrc (s, k) with Not_found -> [] in
        let rec last_before best = function
          | [] -> best
          | (c : Trace.entry) :: rest ->
            if c.tid = e.tid || Time.compare c.start e.start > 0 then best
            else if Time.compare c.finish e.start <= 0 then
              last_before (Some c) rest
            else last_before best rest
        in
        last_before None es
      | _ -> None
    in
    let final =
      List.fold_left
        (fun (best : Trace.entry) (e : Trace.entry) ->
          if
            Time.compare e.finish best.finish > 0
            || (Time.compare e.finish best.finish = 0 && e.tid > best.tid)
          then e
          else best)
        (List.hd entries) (List.tl entries)
    in
    (* Walk back along gating predecessors; [seen] guards against cycles,
       which cannot arise from a well-formed engine trace but must not
       hang the analyzer on a hand-built one. *)
    let seen = Hashtbl.create 64 in
    let rec walk acc (e : Trace.entry) =
      if Hashtbl.mem seen e.tid then acc
      else begin
        Hashtbl.add seen e.tid ();
        match gating_pred ~by_tid ~resource_pred e with
        | Some p -> walk (e :: acc) p
        | None -> e :: acc
      end
    in
    let chain = walk [] final in
    let hop prev_finish (e : Trace.entry) =
      {
        tid = e.tid;
        label = e.label;
        site = e.site;
        kind = e.kind;
        phase = List.assoc_opt "phase" e.attrs;
        start_us = us e.start;
        dur_us = us e.finish -. us e.start;
        wait_us = Float.max 0.0 (us e.start -. prev_finish);
      }
    in
    let _, path =
      List.fold_left
        (fun (prev_finish, acc) (e : Trace.entry) ->
          (us e.finish, hop prev_finish e :: acc))
        (0.0, []) chain
    in
    let path = List.rev path in
    let argmax tbl =
      Hashtbl.fold
        (fun k v best ->
          match best with
          | Some (_, bv) when bv >= v -> best
          | _ -> Some (k, v))
        tbl None
    in
    let weigh pick =
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun h ->
          match pick h with
          | None -> ()
          | Some k ->
            let cur = try Hashtbl.find tbl k with Not_found -> 0.0 in
            Hashtbl.replace tbl k (cur +. h.dur_us))
        path;
      Option.map fst (argmax tbl)
    in
    {
      response_us = us final.finish;
      path;
      dominant_site = weigh (fun h -> h.site);
      dominant_kind = weigh (fun h -> h.kind);
      dominant_phase = weigh (fun h -> h.phase);
    }

let total_us r = List.fold_left (fun acc h -> acc +. h.dur_us +. h.wait_us) 0.0 r.path

let to_json r =
  let module Json = Msdq_obs.Json in
  let opt f = function None -> Json.Null | Some v -> f v in
  Json.Obj
    [
      ("response_us", Json.Float r.response_us);
      ("dominant_site", opt (fun s -> Json.Int s) r.dominant_site);
      ( "dominant_resource",
        opt (fun k -> Json.Str (Resource.kind_to_string k)) r.dominant_kind );
      ("dominant_phase", opt (fun p -> Json.Str p) r.dominant_phase);
      ( "path",
        Json.Arr
          (List.map
             (fun h ->
               Json.Obj
                 [
                   ("tid", Json.Int h.tid);
                   ("label", Json.Str h.label);
                   ("site", opt (fun s -> Json.Int s) h.site);
                   ( "resource",
                     opt (fun k -> Json.Str (Resource.kind_to_string k)) h.kind );
                   ("phase", opt (fun p -> Json.Str p) h.phase);
                   ("start_us", Json.Float h.start_us);
                   ("dur_us", Json.Float h.dur_us);
                   ("wait_us", Json.Float h.wait_us);
                 ])
             r.path) );
    ]

let pp_where ppf h =
  match (h.site, h.kind) with
  | Some s, Some k -> Format.fprintf ppf "site%d/%a" s Resource.pp_kind k
  | _ -> Format.pp_print_string ppf "sync"

let pp ppf r =
  Format.fprintf ppf "@[<v>critical path (%.0f us response):@," r.response_us;
  List.iter
    (fun h ->
      Format.fprintf ppf "  %8.0f us" h.dur_us;
      if h.wait_us > 0.0 then Format.fprintf ppf " (+%.0f wait)" h.wait_us;
      Format.fprintf ppf "  %a  %s" pp_where h h.label;
      (match h.phase with
      | Some p -> Format.fprintf ppf "  [%s]" p
      | None -> ());
      Format.pp_print_cut ppf ())
    r.path;
  (match r.dominant_site with
  | Some s -> Format.fprintf ppf "dominant site: %d@," s
  | None -> ());
  (match r.dominant_kind with
  | Some k -> Format.fprintf ppf "dominant resource: %a@," Resource.pp_kind k
  | None -> ());
  match r.dominant_phase with
  | Some p -> Format.fprintf ppf "dominant phase: %s@]" p
  | None -> Format.fprintf ppf "@]"
