open Msdq_simkit

type frame = {
  now_us : float;
  admitted : int;
  completed : int;
  total : int;
  extent_hits : int;
  extent_lookups : int;
  verdict_hits : int;
  verdict_lookups : int;
  breakers_open : int;
  messages : int;
  shed : int;
  deadline_demotions : int;
  gray_slow_legs : int;
  gray_fallbacks : int;
  latency : Stats.summary;
  per_strategy : (string * int * int) list;
}

let clear = "\027[H\027[2J"

let rate hits lookups =
  if lookups <= 0 then 0.0 else float_of_int hits /. float_of_int lookups

(* ASCII fill: row padding counts bytes, so the bar must stay single-byte
   per column to keep the box aligned. *)
let bar ~width frac =
  let frac = Float.min 1.0 (Float.max 0.0 frac) in
  let full = int_of_float (frac *. float_of_int width) in
  String.make full '#' ^ String.make (width - full) ' '

(* Display columns are UTF-8 code points here: the only multi-byte glyphs
   emitted (the box rules and the '·' separators) are all single-column, so
   counting code points instead of bytes keeps the right border aligned. *)
let display_width s =
  let n = ref 0 in
  String.iter (fun c -> if Char.code c land 0xC0 <> 0x80 then incr n) s;
  !n

(* First [width] code points of [s] — the guard that keeps the right border
   closed even when a row's content is wider than the box. *)
let take_display s width =
  let buf = Buffer.create (String.length s) in
  let n = ref 0 in
  String.iter
    (fun c ->
      if Char.code c land 0xC0 <> 0x80 then incr n;
      if !n <= width then Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Latencies arrive in microseconds but serve workloads live in the
   millisecond range: switch units so quantile rows stay narrow. *)
let pp_lat v =
  if v >= 1000.0 then Printf.sprintf "%.1fms" (v /. 1000.0)
  else Printf.sprintf "%.0fus" v

let render ?(width = 62) f =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let rule = String.concat "" (List.init width (fun _ -> "─")) in
  line "┌%s┐" rule;
  let pad s =
    let n = width - display_width s in
    if n > 0 then s ^ String.make n ' '
    else if n < 0 then take_display s width
    else s
  in
  let row fmt = Printf.ksprintf (fun s -> line "│%s│" (pad s)) fmt in
  row " msdq serve · t=%.0f us" f.now_us;
  line "├%s┤" rule;
  let frac =
    if f.total <= 0 then 1.0 else float_of_int f.completed /. float_of_int f.total
  in
  row " queries   %d admitted · %d/%d completed" f.admitted f.completed f.total;
  row " [%s] %3.0f%%" (bar ~width:(width - 10) frac) (100.0 *. frac);
  row " caches    extent %4.0f%% (%d/%d) · verdict %4.0f%% (%d/%d)"
    (100.0 *. rate f.extent_hits f.extent_lookups)
    f.extent_hits f.extent_lookups
    (100.0 *. rate f.verdict_hits f.verdict_lookups)
    f.verdict_hits f.verdict_lookups;
  row " breakers  %d open · %d messages" f.breakers_open f.messages;
  if f.shed > 0 || f.deadline_demotions > 0 then
    row " overload  %d shed · %d deadline demotions" f.shed
      f.deadline_demotions;
  if f.gray_slow_legs > 0 || f.gray_fallbacks > 0 then
    row " gray      %d slow legs · %d CA fallbacks" f.gray_slow_legs
      f.gray_fallbacks;
  row " latency   p50 %s · p90 %s · p99 %s · max %s"
    (pp_lat f.latency.Stats.p50_us)
    (pp_lat f.latency.Stats.p90_us)
    (pp_lat f.latency.Stats.p99_us)
    (pp_lat f.latency.Stats.max_us);
  if f.per_strategy <> [] then begin
    line "├%s┤" rule;
    List.iter
      (fun (name, admitted, completed) ->
        row " %-4s      %d admitted · %d completed" name admitted completed)
      f.per_strategy
  end;
  line "└%s┘" rule;
  Buffer.contents buf
