open Msdq_odb
open Msdq_simkit
open Msdq_fed
open Msdq_query
open Msdq_exec
module Fault = Msdq_fault.Fault
module Metrics = Msdq_obs.Metrics
module Tracer = Msdq_obs.Tracer
module Optimizer = Msdq_opt.Optimizer
module Planner = Msdq_opt.Planner

type shed_policy = Reject_newest | Reject_oldest | Degrade

let shed_policies = [ Reject_newest; Reject_oldest; Degrade ]

let shed_policy_to_string = function
  | Reject_newest -> "reject-newest"
  | Reject_oldest -> "reject-oldest"
  | Degrade -> "degrade"

let shed_policy_of_string s =
  match String.lowercase_ascii s with
  | "reject-newest" -> Ok Reject_newest
  | "reject-oldest" -> Ok Reject_oldest
  | "degrade" -> Ok Degrade
  | other ->
      Error
        (Printf.sprintf "unknown shed policy %S (accepted: %s)" other
           (String.concat " | " (List.map shed_policy_to_string shed_policies)))

type config = {
  options : Strategy.options;
  cache_bytes : int;
  window : Time.t;
  msg_header_bytes : int;
  deadline : Time.t option;
  queue_limit : int option;
  shed_policy : shed_policy;
}

let default_config =
  {
    options = Strategy.default_options;
    cache_bytes = 4 * 1024 * 1024;
    window = Time.zero;
    msg_header_bytes = 64;
    deadline = None;
    queue_limit = None;
    shed_policy = Reject_newest;
  }

type job = {
  strategy : Strategy.t;
  analysis : Analysis.t;
  arrival : Time.t;
  deadline : Time.t option;
}

type query_report = {
  index : int;
  strategy : Strategy.t;
  arrival : Time.t;
  completed : Time.t;
  latency : Time.t;
  answer : Answer.t;
  extent_hits : int;
  verdict_hits : int;
  deadline_demoted : int;
  registry : Metrics.t;
}

type shed_report = {
  s_index : int;
  s_strategy : Strategy.t;
  s_arrival : Time.t;
  s_policy : shed_policy;
}

type outcome = {
  reports : query_report list;
  shed : shed_report list;
  makespan : Time.t;
  throughput : float;
  extent_cache : Lru.stats;
  verdict_cache : Lru.stats;
  messages : int;
  coalesced_checks : int;
  max_queue_depth : int;
  check_latency : (int * float * int) list;
      (** per destination site: (site, mean delivered check-leg latency in
          microseconds, legs observed) — the gray-health signal the
          telemetry store feeds back into adaptive timeouts *)
  registry : Metrics.t;
  trace : Trace.entry list;
}

let throughput (o : outcome) = o.throughput

(* ------------------------------------------------------------------ *)
(* Validation *)

let validate_deadline what = function
  | None -> ()
  | Some d ->
      if (not (Time.is_finite d)) || Time.compare d Time.zero <= 0 then
        invalid_arg
          (Printf.sprintf
             "Serve: %s must be a positive, finite duration (got %s)" what
             (if Time.is_finite d then
                Printf.sprintf "%.0f us" (Time.to_us d)
              else "a non-finite value"))

let validate cfg jobs =
  Strategy.validate_options cfg.options;
  if cfg.options.Strategy.deep_certify then
    invalid_arg "Serve: deep_certify is not supported by the workload engine";
  if cfg.cache_bytes < 0 then invalid_arg "Serve: negative cache_bytes";
  if cfg.msg_header_bytes < 0 then invalid_arg "Serve: negative msg_header_bytes";
  if (not (Time.is_finite cfg.window)) || Time.compare cfg.window Time.zero < 0
  then invalid_arg "Serve: window must be non-negative and finite";
  validate_deadline "deadline" cfg.deadline;
  (match cfg.queue_limit with
  | Some l when l < 1 ->
      invalid_arg
        (Printf.sprintf
           "Serve: queue_limit must be >= 1 (got %d); omit it for an \
            unbounded queue"
           l)
  | Some _ | None -> ());
  let _ =
    List.fold_left
      (fun prev (j : job) ->
        if j.strategy = Strategy.Cf then
          invalid_arg "Serve: strategy CF has no serve-path integration";
        if (not (Time.is_finite j.arrival))
           || Time.compare j.arrival Time.zero < 0
        then invalid_arg "Serve: job arrivals must be non-negative and finite";
        if Time.compare j.arrival prev < 0 then
          invalid_arg "Serve: jobs must be listed in non-decreasing arrival order";
        validate_deadline "job deadline" j.deadline;
        j.arrival)
      Time.zero jobs
  in
  ()

(* ------------------------------------------------------------------ *)
(* Fault fating — pure, timing-independent.

   Every check round trip's fate is a function of the schedule and the
   query's arrival instant only: drop draws use the schedule's pure hash
   with synthetic per-(query, leg, attempt) labels and the arrival as the
   draw's [start]. Caching can therefore never change which rows demote. *)

let site_generation (s : Fault.schedule) ~site ~at =
  List.fold_left
    (fun acc (sf : Fault.site_faults) ->
      if sf.Fault.site = site then
        acc
        + List.length
            (List.filter
               (fun (w : Fault.window) -> Time.compare w.Fault.up at <= 0)
               sf.Fault.outages)
      else acc)
    0 s.Fault.sites

let link_drop (s : Fault.schedule) ~dst =
  match List.find_opt (fun (l : Fault.link_faults) -> l.Fault.dst = dst) s.Fault.links with
  | Some l -> l.Fault.drop
  | None -> 0.0

let link_inflate (s : Fault.schedule) ~dst =
  match List.find_opt (fun (l : Fault.link_faults) -> l.Fault.dst = dst) s.Fault.links with
  | Some l -> l.Fault.inflate
  | None -> 1.0

type leg = {
  delivered : bool;
  attempts : int;  (** attempts consumed, including the successful one *)
  extra_wait : Time.t;  (** retransmission waits accumulated before giving
                            up or succeeding *)
}

let leg_fate sched (retry : Strategy.retry) ?latency_of ~src ~dst ~label ~at
    () =
  let p = link_drop sched ~dst in
  let down = Fault.site_down sched ~site:dst ~at in
  (* Asymmetric partitions fate like outages: checked once at the query's
     arrival, so the fate stays timing- and cache-independent. *)
  let cut = Fault.one_way_cut sched ~src:(Some src) ~dst ~at in
  (* Adaptive retry: the per-destination effective timeout replaces the
     static one in every wait. The drop draws below ignore the timeout
     entirely, so which legs deliver — and hence which rows demote — is
     identical under static and adaptive policies; only the waits differ. *)
  let timeout = Strategy.effective_timeout ?latency_of retry ~dst in
  let wait_of k =
    Time.us
      (Time.to_us timeout *. (retry.Strategy.backoff ** float_of_int (k - 1)))
  in
  let rec go k wait =
    let dropped =
      down || cut
      || Fault.drop_draw sched ~dst
           ~label:(Printf.sprintf "%s:a%d" label k)
           ~start:at ~p
    in
    if not dropped then { delivered = true; attempts = k; extra_wait = wait }
    else
      let wait = Time.add wait (wait_of k) in
      if k >= retry.Strategy.max_attempts then
        { delivered = false; attempts = k; extra_wait = wait }
      else go (k + 1) wait
  in
  go 1 Time.zero

(* ------------------------------------------------------------------ *)
(* Admission control — pure, timing-independent.

   Arrivals walk a deterministic virtual single-server FIFO queue over
   Planner-predicted response times: entry [i] virtually starts at
   [max arrival_i (previous virtual finish)] and finishes one predicted
   service later. The queue depth seen by an arrival (entries whose
   virtual finish lies beyond it) drives the shed decision and, together
   with the deadline-miss EWMA, the overload score fed back to the
   optimizer. Everything here is a function of arrivals and catalog-only
   predictions — never of engine timing or cache state — so admission
   decisions, like fault fates, are identical warm and cold. *)

let miss_alpha = 0.2

(* Gray detection (run_auto): a delivered check leg counts as slow when its
   latency stretch over the fault-free baseline reaches [gray_slow_ratio];
   per-site slow observations feed an EWMA with [gray_alpha], and a site
   whose EWMA exceeds [gray_threshold] is reported gray to the optimizer. *)
let gray_slow_ratio = 1.5
let gray_alpha = 0.4
let gray_threshold = 0.5

type vq_entry = {
  e_index : int;
  e_arrival : Time.t;
  e_service : Time.t;
  mutable e_vstart : Time.t;
  mutable e_vfinish : Time.t;
}

type admission = {
  a_limit : int option;
  (* admitted, oldest first; a growable array ([a_len] live entries) so the
     per-arrival hot path appends in O(1) and depth checks count in place
     instead of rebuilding lists *)
  mutable a_entries : vq_entry array;
  mutable a_len : int;
  mutable a_miss_ewma : float;  (* predicted deadline misses, EWMA *)
  mutable a_max_depth : int;
}

let admission_create cfg =
  {
    a_limit = cfg.queue_limit;
    a_entries = [||];
    a_len = 0;
    a_miss_ewma = 0.0;
    a_max_depth = 0;
  }

(* Recompute the virtual start/finish chain after a structural change
   (eviction); a push only needs the tail's finish, see below. *)
let vq_rechain adm =
  let last = ref Time.zero in
  for i = 0 to adm.a_len - 1 do
    let e = adm.a_entries.(i) in
    e.e_vstart <- Time.max e.e_arrival !last;
    e.e_vfinish <- Time.add e.e_vstart e.e_service;
    last := e.e_vfinish
  done

let admission_depth adm ~at =
  let d = ref 0 in
  for i = 0 to adm.a_len - 1 do
    if Time.compare adm.a_entries.(i).e_vfinish at > 0 then incr d
  done;
  if !d > adm.a_max_depth then adm.a_max_depth <- !d;
  !d

let admission_overload adm ~at =
  (match adm.a_limit with
  | Some l -> float_of_int (admission_depth adm ~at) /. float_of_int l
  | None -> 0.0)
  +. adm.a_miss_ewma

let over_capacity adm ~at =
  match adm.a_limit with
  | Some l -> admission_depth adm ~at >= l
  | None -> false

let admission_grow adm e =
  if adm.a_len = Array.length adm.a_entries then begin
    let cap = if adm.a_len = 0 then 16 else 2 * adm.a_len in
    let entries = Array.make cap e in
    Array.blit adm.a_entries 0 entries 0 adm.a_len;
    adm.a_entries <- entries
  end

(* Admit one job; returns its predicted queueing delay. Arrivals come in
   admission order, so the new entry's chain position depends only on the
   tail's virtual finish — no rechain of the earlier entries needed. *)
let admission_push adm ~index ~arrival ~service =
  let last =
    if adm.a_len = 0 then Time.zero
    else adm.a_entries.(adm.a_len - 1).e_vfinish
  in
  let vstart = Time.max arrival last in
  let e =
    {
      e_index = index;
      e_arrival = arrival;
      e_service = service;
      e_vstart = vstart;
      e_vfinish = Time.add vstart service;
    }
  in
  admission_grow adm e;
  adm.a_entries.(adm.a_len) <- e;
  adm.a_len <- adm.a_len + 1;
  Time.sub e.e_vstart arrival

(* Reject_oldest: drop the oldest admitted job that has not virtually
   started (the queue head); [None] when every earlier job is already in
   virtual service, in which case the arrival itself must shed. *)
let admission_evict_oldest adm ~at =
  let rec find i =
    if i >= adm.a_len then None
    else
      let e = adm.a_entries.(i) in
      if Time.compare e.e_vstart at > 0 then begin
        Array.blit adm.a_entries (i + 1) adm.a_entries i (adm.a_len - i - 1);
        adm.a_len <- adm.a_len - 1;
        vq_rechain adm;
        Some e.e_index
      end
      else find (i + 1)
  in
  find 0

let admission_observe_miss adm ~deadline ~qdelay ~service =
  let miss =
    match deadline with
    | Some budget when Time.compare (Time.add qdelay service) budget > 0 -> 1.0
    | Some _ | None -> 0.0
  in
  adm.a_miss_ewma <-
    ((1.0 -. miss_alpha) *. adm.a_miss_ewma) +. (miss_alpha *. miss)

(* ------------------------------------------------------------------ *)
(* Host-side preparation: real answers, cache decisions, fault fates.

   All data decisions happen here, in job-admission order, before any
   simulated time elapses — the engine pass below only charges durations.
   This is what makes the whole workload's answers independent of engine
   interleaving, cache capacity and batching window by construction. *)

type check_group = {
  g_origin : string;
  g_target : string;
  g_all : Checks.request list;
  g_wire : Checks.request list;  (* cache misses actually shipped *)
  g_hits : Checks.verdict list;  (* served from the verdict cache *)
  g_full_verdicts : Checks.verdict list;  (* every request answered *)
  g_wire_read_bytes : int;
  g_wire_serve_units : int;
  g_wire_verdicts : int;
  g_req_leg : leg;
  g_ver_leg : leg;
  g_doomed : bool;  (* abandoned at the query's deadline *)
  g_deadline_est : Time.t;  (* estimated completion that blew the budget *)
}

let group_lost g = not (g.g_req_leg.delivered && g.g_ver_leg.delivered)

type local_db = {
  l_db : string;
  l_site : int;
  l_result : Local_result.t;
  l_built : Checks.built;
  l_probe_units : int option;  (* PL only *)
  l_read_bytes : int;
  l_read_hit : bool;
  l_eval_units : int;
  l_dispatch_units : int;
  l_ship_bytes : int;
}

type qplan =
  | Centralized of {
      ca_ships : (string * int * int * bool) list;
          (* db, site, extent bytes, cache hit *)
      ca_units : int;  (* integrate + eval + lookups, at the global site *)
    }
  | Localized of { locals : local_db list; groups : check_group list }

type prepared = {
  p_index : int;
  p_strategy : Strategy.t;
  p_arrival : Time.t;
  p_deadline : Time.t option;  (* effective latency budget *)
  p_plan : qplan;
  p_answer : Answer.t;
  p_certify_units : int;
  p_extent_hits : int;
  p_verdict_hits : int;
  p_deadline_demoted : int;
  p_registry : Metrics.t;
}

let involved_sig involved =
  String.concat ";"
    (List.map
       (fun gcls ->
         gcls ^ ":" ^ String.concat "," (Involved.attrs_of_class involved gcls))
       (Involved.classes involved))

(* What an extent-cache entry holds: the shipped artifact is a projection of
   one database's involved extents, and since extents are columnar the
   natural cached form is a slice descriptor per constituent class — which
   attribute columns were cut out and over how many rows. Keys, byte
   accounting and hit/miss behavior are untouched; the payload just stopped
   being [unit]. *)
type slice = {
  s_cls : string;  (* constituent class at the source database *)
  s_attrs : string list;  (* projected attribute columns *)
  s_rows : int;  (* extent rows covered at build time *)
}

let involved_slices fed gs involved ~db_name =
  let db = Federation.db fed db_name in
  List.filter_map
    (fun gcls ->
      match Global_schema.constituent_of gs ~gcls ~db:db_name with
      | None -> None
      | Some cls ->
          Some
            {
              s_cls = cls;
              s_attrs = Involved.attrs_of_class involved gcls;
              s_rows = Database.extent_size db cls;
            })
    (Involved.classes involved)

let units_of_work = Meter.units

(* One extent cache per site: each site owns [cache_bytes] of cache RAM. *)
let extent_cache_of caches ~cache_bytes ~site =
  match Hashtbl.find_opt caches site with
  | Some c -> c
  | None ->
      let c = Lru.create ~capacity_bytes:cache_bytes in
      Hashtbl.add caches site c;
      c

(* [qdelay] is the admission queue's predicted queueing delay for this
   query and [predicted] the Planner-predicted response of its strategy;
   both are zero when neither deadline nor queue limit is configured.
   Together with each group's retry waits they decide — at admission,
   timing-independently — which check round trips the deadline abandons. *)
let prepare (cfg : config) fed tracer ~extent_caches ~verdict_cache
    ~signatures ~qdelay ~predicted index (j : job) =
  let deadline =
    match j.deadline with Some _ as d -> d | None -> cfg.deadline
  in
  let opts = cfg.options in
  let sched = opts.Strategy.fault in
  let c = opts.Strategy.cost in
  let caching = cfg.cache_bytes > 0 in
  let gs = Federation.global_schema fed in
  let gsite = Federation.global_site fed in
  let analysis = j.analysis in
  let involved = Involved.compute (Global_schema.schema gs) analysis in
  let isig = involved_sig involved in
  let at = j.arrival in
  let registry = Metrics.create () in
  let extent_hits = ref 0 in
  let verdict_hits = ref 0 in
  (* Generation of a cache at [holder]: the holder's crashes wipe its RAM;
     for artifacts derived from another site's data ([source]), that site's
     crashes stale the copy too. *)
  let gen ~holder ~source =
    site_generation sched ~site:holder ~at
    + if source = holder then 0 else site_generation sched ~site:source ~at
  in
  match j.strategy with
  | Strategy.Cf -> assert false (* rejected by [validate] *)
  | Strategy.Ca ->
      let outcome = Ca.run ~multi_valued:opts.Strategy.multi_valued ~tracer fed analysis in
      let ca_ships =
        List.map
          (fun (db_name, db) ->
            let site = Federation.site_of fed db_name in
            let bytes = Wire.projected_extent_bytes c involved gs ~db_name ~db in
            let hit =
              caching
              &&
              let cache = extent_cache_of extent_caches ~cache_bytes:cfg.cache_bytes ~site:gsite in
              let g = gen ~holder:gsite ~source:site in
              let key = Printf.sprintf "ca|%s|%s" db_name isig in
              match Lru.find cache ~gen:g key with
              | Some _ -> true
              | None ->
                  Lru.add cache ~gen:g ~key ~bytes
                    (involved_slices fed gs involved ~db_name);
                  false
            in
            if hit then incr extent_hits;
            (db_name, site, bytes, hit))
          (Federation.databases fed)
      in
      let m = outcome.Ca.materialize_stats in
      let ca_units =
        m.Materialize.source_objects + m.Materialize.fields_merged
        + outcome.Ca.goid_lookups
        + units_of_work outcome.Ca.eval_work
        + !extent_hits
      in
      {
        p_index = index;
        p_strategy = j.strategy;
        p_arrival = at;
        p_deadline = deadline;
        p_plan = Centralized { ca_ships; ca_units };
        p_answer = outcome.Ca.answer;
        p_certify_units = ca_units;
        p_extent_hits = !extent_hits;
        p_verdict_hits = 0;
        p_deadline_demoted = 0;
        p_registry = registry;
      }
  | (Strategy.Bl | Strategy.Pl | Strategy.Bls | Strategy.Pls | Strategy.Lo) as st ->
      let parallel = st = Strategy.Pl || st = Strategy.Pls in
      let signed = st = Strategy.Bls || st = Strategy.Pls in
      let checks_on = st <> Strategy.Lo in
      let signatures = if signed then Some (Lazy.force signatures) else None in
      let plans = Localize.plan fed analysis in
      let n_targets = List.length analysis.Analysis.targets in
      let locals =
        List.map
          (fun (plan : Localize.db_plan) ->
            let db_name = plan.Localize.db in
            let site = Federation.site_of fed db_name in
            let touched = Touch.count fed analysis ~db:db_name in
            let read_bytes =
              Wire.localized_read_bytes c involved gs ~db_name ~touched
            in
            let read_hit =
              caching
              &&
              let cache = extent_cache_of extent_caches ~cache_bytes:cfg.cache_bytes ~site in
              let g = gen ~holder:site ~source:site in
              let key = Printf.sprintf "loc|%s|%s" db_name isig in
              match Lru.find cache ~gen:g key with
              | Some _ -> true
              | None ->
                  Lru.add cache ~gen:g ~key ~bytes:read_bytes
                    (involved_slices fed gs involved ~db_name);
                  false
            in
            if read_hit then incr extent_hits;
            let probe =
              if parallel then Some (Probe.run ~tracer fed analysis ~db:db_name)
              else None
            in
            let result = Local_eval.run ~tracer fed analysis ~db:db_name in
            let built =
              if not checks_on then
                {
                  Checks.requests = [];
                  local_verdicts = [];
                  filtered = 0;
                  incapable = 0;
                  root_level = 0;
                  goid_lookups = 0;
                  work = Meter.zero;
                }
              else
                let items =
                  match probe with
                  | Some p -> p.Probe.items
                  | None ->
                      List.concat_map
                        (fun (row : Local_result.row) -> row.Local_result.unsolved)
                        result.Local_result.rows
                in
                Checks.build ?signatures ~tracer fed analysis ~db:db_name
                  ~root_class:plan.Localize.local_class ~items
            in
            {
              l_db = db_name;
              l_site = site;
              l_result = result;
              l_built = built;
              l_probe_units =
                Option.map (fun p -> units_of_work p.Probe.work) probe;
              l_read_bytes = read_bytes;
              l_read_hit = read_hit;
              l_eval_units =
                units_of_work result.Local_result.work
                + List.length result.Local_result.rows;
              l_dispatch_units =
                built.Checks.goid_lookups + units_of_work built.Checks.work;
              l_ship_bytes =
                Wire.results_bytes c ~n_targets result
                + List.length built.Checks.local_verdicts * Wire.verdict_bytes c;
            })
          plans
      in
      (* Check batches per (origin, target), in discovery order. *)
      let batches : (string * string, Checks.request list ref) Hashtbl.t =
        Hashtbl.create 16
      in
      let order = ref [] in
      List.iter
        (fun l ->
          List.iter
            (fun (r : Checks.request) ->
              let key = (r.Checks.origin_db, r.Checks.target_db) in
              match Hashtbl.find_opt batches key with
              | Some acc -> acc := r :: !acc
              | None ->
                  Hashtbl.add batches key (ref [ r ]);
                  order := key :: !order)
            l.l_built.Checks.requests)
        locals;
      let retry = opts.Strategy.retry in
      let groups =
        List.map
          (fun ((origin, target) as key) ->
            let reqs = List.rev !(Hashtbl.find batches key) in
            let tsite = Federation.site_of fed target in
            (* Fate first — a doomed round trip never consults the cache,
               so warm demotions coincide with cold ones. *)
            let req_leg =
              leg_fate sched retry ?latency_of:opts.Strategy.latency_of
                ~src:gsite ~dst:tsite
                ~label:(Printf.sprintf "serve:q%d:%s->%s:req" index origin target)
                ~at ()
            in
            let ver_leg =
              leg_fate sched retry ?latency_of:opts.Strategy.latency_of
                ~src:tsite ~dst:gsite
                ~label:(Printf.sprintf "serve:q%d:%s->%s:verdict" index origin target)
                ~at ()
            in
            let lost = not (req_leg.delivered && ver_leg.delivered) in
            (* Deadline fate, decided at admission like loss fates: the
               round trip is abandoned iff its estimated completion —
               predicted queueing delay + predicted response + this
               group's retry waits — blows the query's budget. A doomed
               round trip never consults or populates the cache either,
               so cached verdicts can never resurrect a deadline-demoted
               row (the fault-dooming suppression rule). *)
            let est =
              Time.add qdelay
                (Time.add predicted
                   (Time.add req_leg.extra_wait ver_leg.extra_wait))
            in
            let doomed =
              match deadline with
              | None -> false
              | Some budget -> Time.compare est budget > 0
            in
            let dead = lost || doomed in
            let wire, hits =
              if dead || not caching then (reqs, [])
              else
                let g = gen ~holder:gsite ~source:tsite in
                List.fold_left
                  (fun (wire, hits) (r : Checks.request) ->
                    match
                      Lru.find verdict_cache ~gen:g (Checks.request_signature r)
                    with
                    | Some truth ->
                        ( wire,
                          {
                            Checks.origin_db = r.Checks.origin_db;
                            item = r.Checks.item;
                            atom = r.Checks.atom;
                            truth;
                          }
                          :: hits )
                    | None -> (r :: wire, hits))
                  ([], []) reqs
                |> fun (w, h) -> (List.rev w, List.rev h)
            in
            verdict_hits := !verdict_hits + List.length hits;
            (* Serve the shipped subset; the full set is additionally served
               host-side to anchor the fault-free reference answer. *)
            let served_wire = Checks.serve ~tracer fed ~db:target wire in
            let full =
              if dead || hits = [] then
                (Checks.serve ~tracer fed ~db:target reqs).Checks.verdicts
              else hits @ served_wire.Checks.verdicts
            in
            if (not dead) && caching then
              List.iter2
                (fun (r : Checks.request) (v : Checks.verdict) ->
                  let g = gen ~holder:gsite ~source:tsite in
                  Lru.add verdict_cache ~gen:g
                    ~key:(Checks.request_signature r)
                    ~bytes:(Wire.verdict_bytes c) v.Checks.truth)
                wire served_wire.Checks.verdicts;
            {
              g_origin = origin;
              g_target = target;
              g_all = reqs;
              g_wire = (if dead then reqs else wire);
              g_hits = (if dead then [] else hits);
              g_full_verdicts = full;
              g_wire_read_bytes =
                Wire.check_read_bytes c (if dead then reqs else wire);
              g_wire_serve_units = units_of_work served_wire.Checks.work;
              g_wire_verdicts = List.length served_wire.Checks.verdicts;
              g_req_leg = req_leg;
              g_ver_leg = ver_leg;
              g_doomed = doomed;
              g_deadline_est = (if doomed then est else Time.zero);
            })
          (List.rev !order)
      in
      (* Certification: the fault-free reference uses every verdict; lost
         batches are withheld to find exactly which rows demote. *)
      let results = List.map (fun l -> l.l_result) locals in
      let local_verdicts =
        List.concat_map (fun l -> l.l_built.Checks.local_verdicts) locals
      in
      let full_verdicts =
        local_verdicts @ List.concat_map (fun g -> g.g_full_verdicts) groups
      in
      let ff =
        Certify.run ~multi_valued:opts.Strategy.multi_valued ~tracer fed
          analysis ~results ~verdicts:full_verdicts
      in
      let lost_groups = List.filter group_lost groups in
      let doomed_groups =
        List.filter (fun g -> g.g_doomed && not (group_lost g)) groups
      in
      (* Demotion by construction, in two layers: withholding the lost
         batches' verdicts finds the fault demotions; additionally
         withholding the deadline-doomed batches' verdicts finds the rows
         the budget demotes on top. certain(final) ⊆ certain(fault-only)
         ⊆ certain(fault-free), and the deadline demotions are exactly
         certain(fault-only) minus certain(final) — the reconciliation
         the soundness property pins. *)
      let answer, deadline_demoted_count =
        if lost_groups = [] && doomed_groups = [] then (ff.Certify.answer, 0)
        else begin
          let certain_with keep =
            let verdicts =
              local_verdicts
              @ List.concat_map
                  (fun g -> if keep g then g.g_full_verdicts else [])
                  groups
            in
            let r =
              Certify.run ~multi_valued:opts.Strategy.multi_valued ~tracer fed
                analysis ~results ~verdicts
            in
            Answer.goids r.Certify.answer Answer.Certain
          in
          let ff_certain = Answer.goids ff.Certify.answer Answer.Certain in
          let fault_certain =
            if lost_groups = [] then ff_certain
            else certain_with (fun g -> not (group_lost g))
          in
          let final_certain =
            if doomed_groups = [] then fault_certain
            else certain_with (fun g -> not (group_lost g || g.g_doomed))
          in
          let fault_demoted = Oid.Goid.Set.diff ff_certain fault_certain in
          let deadline_demoted =
            Oid.Goid.Set.diff fault_certain final_certain
          in
          let fault_reason =
            Answer.Fault
              (Printf.sprintf "check batch lost: %s"
                 (String.concat "; "
                    (List.map
                       (fun g ->
                         Printf.sprintf "%s->%s after %d attempts" g.g_origin
                           g.g_target
                           (max g.g_req_leg.attempts g.g_ver_leg.attempts))
                       lost_groups)))
          in
          let deadline_reason =
            let elapsed =
              List.fold_left
                (fun acc g -> Time.max acc g.g_deadline_est)
                Time.zero doomed_groups
            in
            Answer.Deadline
              {
                elapsed_us = Time.to_us elapsed;
                budget_us =
                  (match deadline with
                  | Some b -> Time.to_us b
                  | None -> 0.0);
              }
          in
          let demoted = Oid.Goid.Set.union fault_demoted deadline_demoted in
          let demoted_answer = Answer.demote ff.Certify.answer ~goids:demoted in
          ( Answer.annotate_degraded demoted_answer
              ~reasons:
                (List.map
                   (fun g -> (g, fault_reason))
                   (Oid.Goid.Set.elements fault_demoted)
                @ List.map
                    (fun g -> (g, deadline_reason))
                    (Oid.Goid.Set.elements deadline_demoted)),
            Oid.Goid.Set.cardinal deadline_demoted )
        end
      in
      (* Cache provenance: rows certified through at least one cache-served
         verdict. *)
      let answer =
        let hit_keys =
          List.concat_map
            (fun g ->
              List.map
                (fun (v : Checks.verdict) ->
                  (v.Checks.origin_db, Oid.Loid.to_int v.Checks.item, v.Checks.atom))
                g.g_hits)
            groups
        in
        if hit_keys = [] then answer
        else
          let key_set = Hashtbl.create 16 in
          List.iter (fun k -> Hashtbl.replace key_set k ()) hit_keys;
          let goids =
            List.fold_left
              (fun acc (res : Local_result.t) ->
                List.fold_left
                  (fun acc (row : Local_result.row) ->
                    if
                      List.exists
                        (fun (u : Local_result.unsolved) ->
                          Hashtbl.mem key_set
                            ( res.Local_result.db,
                              Oid.Loid.to_int (Dbobject.loid u.Local_result.item),
                              u.Local_result.atom ))
                        row.Local_result.unsolved
                    then Oid.Goid.Set.add row.Local_result.goid acc
                    else acc)
                  acc res.Local_result.rows)
              Oid.Goid.Set.empty results
          in
          Answer.mark_cached answer ~goids
      in
      {
        p_index = index;
        p_strategy = st;
        p_arrival = at;
        p_deadline = deadline;
        p_plan = Localized { locals; groups };
        p_answer = answer;
        p_certify_units =
          units_of_work ff.Certify.work + ff.Certify.goid_lookups
          + !verdict_hits;
        p_extent_hits = !extent_hits;
        p_verdict_hits = !verdict_hits;
        p_deadline_demoted = deadline_demoted_count;
        p_registry = registry;
      }

(* ------------------------------------------------------------------ *)
(* Engine pass: charge the shared simulated clock. *)

type contrib = {
  b_query : int;
  b_origin_site : int;
  b_n_reqs : int;  (* wire requests carried *)
  b_payload : int;  (* request bytes, without framing *)
  b_read_bytes : int;
  b_serve_units : int;
  b_verdict_bytes : int;  (* without framing *)
  b_promise : Engine.handle;
  b_reg : Metrics.t;
  b_strategy : string;
}

type batch_state = { mutable contribs : contrib list (* reverse order *) }

type ctx = {
  cfg : config;
  fed : Federation.t;
  eng : Engine.t;
  wl : Metrics.t;
  gsite : int;
  batchers : (int, batch_state) Hashtbl.t;
  mutable messages : int;
  mutable coalesced : int;
}

let sched_of ctx = ctx.cfg.options.Strategy.fault
let cost_of ctx = ctx.cfg.options.Strategy.cost

let bump reg name labels n =
  if n <> 0 then Metrics.inc (Metrics.counter reg ~labels name) n

let q_labels st phase = [ ("strategy", Strategy.to_string st); ("phase", phase) ]

(* The span context every serve-path engine task carries: the owning
   query's trace id (the causal parent edges are the dependency tids the
   engine records on its own). *)
let qattr index = [ ("trace", Printf.sprintf "q%d" index) ]

let disk_task ctx reg st ~site ~phase ~attrs ~label ~bytes ~deps =
  bump reg "msdq_disk_bytes_total" (q_labels st phase) bytes;
  Engine.task ctx.eng ~deps ~site ~kind:Resource.Disk ~label
    ~attrs:(("strategy", Strategy.to_string st) :: ("phase", phase) :: attrs)
    ~duration:(Cost.disk (cost_of ctx) ~bytes)
    ()

let cpu_task ctx reg st ~site ~phase ~attrs ~label ~units ~deps =
  bump reg "msdq_work_units_total" (q_labels st phase) units;
  Engine.task ctx.eng ~deps ~site ~kind:Resource.Cpu ~label
    ~attrs:(("strategy", Strategy.to_string st) :: ("phase", phase) :: attrs)
    ~duration:(Cost.cpu (cost_of ctx) ~units)
    ()

let net_duration ctx ~dst ~label ~at ~bytes =
  let base = Cost.net (cost_of ctx) ~bytes in
  let sched = sched_of ctx in
  let stretch =
    link_inflate sched ~dst *. Fault.jitter_draw sched ~dst ~label ~start:at
  in
  Time.us (Time.to_us base *. stretch)

(* A serve-path message that is never lost: waits out a destination outage
   (computed at send time from the schedule), then occupies the
   destination's link. [payload] excludes the framing header; callers
   attribute shipped bytes to the owning queries' registries themselves
   (a coalesced message splits its payload across contributors). Returns a
   promise completed at delivery. *)
let critical_transfer ctx ~src ~dst ~payload ~label ~deps ?(attrs = [])
    ?(on_delivered = fun () -> ()) () =
  let sched = sched_of ctx in
  let bytes = payload + ctx.cfg.msg_header_bytes in
  ctx.messages <- ctx.messages + 1;
  bump ctx.wl "msdq_messages_total" [ ("path", "serve") ] 1;
  let p = Engine.promise ctx.eng ~label:(label ^ ":done") in
  let send () =
    let now = Engine.now ctx.eng in
    let deps =
      if Fault.site_down sched ~site:dst ~at:now then
        match Fault.next_up sched ~site:dst ~at:now with
        | Some up ->
            [
              Engine.delay ctx.eng ~label:(label ^ ":wait-up") ~attrs
                ~duration:(Time.sub up now) ();
            ]
        | None -> [] (* permanent outage: documented as unreachable-for-
                        checks only; critical sends proceed *)
      else []
    in
    ignore
      (Engine.transfer ctx.eng ~deps ~src ~dst ~label ~attrs
         ~duration:(net_duration ctx ~dst ~label ~at:now ~bytes)
         ~on_complete:(fun () ->
           on_delivered ();
           Engine.resolve ctx.eng p)
         ())
  in
  ignore
    (Engine.fence ctx.eng ~deps ~label:(label ^ ":ready") ~attrs
       ~on_complete:send ());
  p

(* Flush one coalesced batch to [tsite]: one request message per
   contributing origin site, one read + serve at the target, one verdict
   message to the global site, then every contributor's promise resolves. *)
let flush ctx ~target_db ~tsite contribs =
  let contribs = List.rev contribs in
  let by_origin = Hashtbl.create 4 in
  let origin_order = ref [] in
  List.iter
    (fun c ->
      match Hashtbl.find_opt by_origin c.b_origin_site with
      | Some acc -> acc := c :: !acc
      | None ->
          Hashtbl.add by_origin c.b_origin_site (ref [ c ]);
          origin_order := c.b_origin_site :: !origin_order)
    contribs;
  (* A coalesced message belongs to one query's trace when it carries a
     single query's checks, and to the shared [batch] trace otherwise. *)
  let trace_of cs =
    match List.sort_uniq compare (List.map (fun c -> c.b_query) cs) with
    | [ q ] -> qattr q
    | _ -> [ ("trace", "batch") ]
  in
  let req_done =
    List.map
      (fun osite ->
        let cs = List.rev !(Hashtbl.find by_origin osite) in
        let queries =
          List.sort_uniq compare (List.map (fun c -> c.b_query) cs)
        in
        (* Checks that shared a message with another query's checks. *)
        if List.length queries > 1 then
          ctx.coalesced <-
            ctx.coalesced + List.fold_left (fun acc c -> acc + c.b_n_reqs) 0 cs;
        (* Per-query payloads share one message and one header. *)
        let payload = List.fold_left (fun acc c -> acc + c.b_payload) 0 cs in
        List.iter
          (fun c ->
            bump c.b_reg "msdq_bytes_shipped_total"
              [ ("strategy", c.b_strategy); ("phase", "O") ]
              c.b_payload)
          cs;
        critical_transfer ctx ~src:osite ~dst:tsite ~payload
          ~label:(Printf.sprintf "serve:ship-requests:%s" target_db)
          ~attrs:(trace_of cs) ~deps:[] ())
      (List.rev !origin_order)
  in
  (* The target's disk and CPU are FIFO, so per-contributor tasks keep the
     timing of one fused batch task while attributing work to the query
     that caused it. *)
  let evals =
    List.map
      (fun c ->
        let st =
          match Strategy.of_string c.b_strategy with
          | Some s -> s
          | None -> Strategy.Bl
        in
        let read =
          disk_task ctx c.b_reg st ~site:tsite ~phase:"O"
            ~attrs:(qattr c.b_query)
            ~label:(Printf.sprintf "serve:check-read:%s" target_db)
            ~bytes:c.b_read_bytes ~deps:req_done
        in
        cpu_task ctx c.b_reg st ~site:tsite ~phase:"O"
          ~attrs:(qattr c.b_query)
          ~label:(Printf.sprintf "serve:check-eval:%s" target_db)
          ~units:c.b_serve_units ~deps:[ read ])
      contribs
  in
  let verdict_payload =
    List.fold_left (fun acc c -> acc + c.b_verdict_bytes) 0 contribs
  in
  List.iter
    (fun c ->
      bump c.b_reg "msdq_bytes_shipped_total"
        [ ("strategy", c.b_strategy); ("phase", "O") ]
        c.b_verdict_bytes)
    contribs;
  ignore
    (critical_transfer ctx ~src:tsite ~dst:ctx.gsite
       ~payload:verdict_payload
       ~label:(Printf.sprintf "serve:ship-verdicts:%s" target_db)
       ~attrs:(trace_of contribs) ~deps:evals
       ~on_delivered:(fun () ->
         List.iter (fun c -> Engine.resolve ctx.eng c.b_promise) contribs)
       ())

(* Hand a contribution to the target site's admission window. With a zero
   window it flushes alone; otherwise the first contribution opens the
   window and every contribution arriving before expiry rides along. *)
let batcher_add ctx ~target_db ~tsite contrib =
  if Time.compare ctx.cfg.window Time.zero <= 0 then
    flush ctx ~target_db ~tsite [ contrib ]
  else
    match Hashtbl.find_opt ctx.batchers tsite with
    | Some b -> b.contribs <- contrib :: b.contribs
    | None ->
        let b = { contribs = [ contrib ] } in
        Hashtbl.add ctx.batchers tsite b;
        ignore
          (Engine.delay ctx.eng
             ~label:(Printf.sprintf "serve:window:%s" target_db)
             ~duration:ctx.cfg.window
             ~on_complete:(fun () ->
               Hashtbl.remove ctx.batchers tsite;
               flush ctx ~target_db ~tsite b.contribs)
             ())

let build_query ctx (p : prepared) ~completed =
  let st = p.p_strategy in
  let reg = p.p_registry in
  let q = qattr p.p_index in
  let arrive =
    Engine.delay ctx.eng
      ~label:(Printf.sprintf "serve:q%d:arrival" p.p_index)
      ~attrs:q ~duration:p.p_arrival ()
  in
  let finishf handle =
    ignore
      (Engine.fence ctx.eng ~deps:[ handle ]
         ~label:(Printf.sprintf "serve:q%d:answer" p.p_index)
         ~attrs:q
         ~on_complete:(fun () -> completed p.p_index (Engine.now ctx.eng))
         ())
  in
  match p.p_plan with
  | Centralized { ca_ships; ca_units } ->
      let deps =
        List.map
          (fun (db_name, site, bytes, hit) ->
            if hit then
              cpu_task ctx reg st ~site:ctx.gsite ~phase:"O" ~attrs:q
                ~label:(Printf.sprintf "serve:q%d:cache-extents:%s" p.p_index db_name)
                ~units:1 ~deps:[ arrive ]
            else
              let read =
                disk_task ctx reg st ~site ~phase:"O" ~attrs:q
                  ~label:(Printf.sprintf "serve:q%d:read-extents:%s" p.p_index db_name)
                  ~bytes ~deps:[ arrive ]
              in
              bump reg "msdq_bytes_shipped_total" (q_labels st "O") bytes;
              critical_transfer ctx ~src:site ~dst:ctx.gsite ~payload:bytes
                ~label:(Printf.sprintf "serve:q%d:ship-objects:%s" p.p_index db_name)
                ~attrs:q ~deps:[ read ] ())
          ca_ships
      in
      let integrate =
        cpu_task ctx reg st ~site:ctx.gsite ~phase:"I" ~attrs:q
          ~label:(Printf.sprintf "serve:q%d:integrate-eval" p.p_index)
          ~units:ca_units ~deps
      in
      finishf integrate
  | Localized { locals; groups } ->
      let dispatch_of : (string, Engine.handle) Hashtbl.t = Hashtbl.create 4 in
      let ships =
        List.map
          (fun l ->
            let read =
              if l.l_read_hit then
                cpu_task ctx reg st ~site:l.l_site ~phase:"P" ~attrs:q
                  ~label:(Printf.sprintf "serve:q%d:cache-extents:%s" p.p_index l.l_db)
                  ~units:1 ~deps:[ arrive ]
              else
                disk_task ctx reg st ~site:l.l_site ~phase:"P" ~attrs:q
                  ~label:(Printf.sprintf "serve:q%d:read-extents:%s" p.p_index l.l_db)
                  ~bytes:l.l_read_bytes ~deps:[ arrive ]
            in
            let last =
              match l.l_probe_units with
              | Some probe_units ->
                  (* PL: probe + dispatch overlap evaluation. *)
                  let probe =
                    cpu_task ctx reg st ~site:l.l_site ~phase:"O" ~attrs:q
                      ~label:(Printf.sprintf "serve:q%d:probe:%s" p.p_index l.l_db)
                      ~units:probe_units ~deps:[ read ]
                  in
                  let dispatch =
                    cpu_task ctx reg st ~site:l.l_site ~phase:"O" ~attrs:q
                      ~label:(Printf.sprintf "serve:q%d:dispatch:%s" p.p_index l.l_db)
                      ~units:l.l_dispatch_units ~deps:[ probe ]
                  in
                  Hashtbl.replace dispatch_of l.l_db dispatch;
                  cpu_task ctx reg st ~site:l.l_site ~phase:"P" ~attrs:q
                    ~label:(Printf.sprintf "serve:q%d:local-eval:%s" p.p_index l.l_db)
                    ~units:l.l_eval_units ~deps:[ dispatch ]
              | None ->
                  let eval =
                    cpu_task ctx reg st ~site:l.l_site ~phase:"P" ~attrs:q
                      ~label:(Printf.sprintf "serve:q%d:local-eval:%s" p.p_index l.l_db)
                      ~units:l.l_eval_units ~deps:[ read ]
                  in
                  if l.l_dispatch_units > 0 || l.l_built.Checks.requests <> []
                  then begin
                    let dispatch =
                      cpu_task ctx reg st ~site:l.l_site ~phase:"O" ~attrs:q
                        ~label:(Printf.sprintf "serve:q%d:dispatch:%s" p.p_index l.l_db)
                        ~units:l.l_dispatch_units ~deps:[ eval ]
                    in
                    Hashtbl.replace dispatch_of l.l_db dispatch;
                    dispatch
                  end
                  else eval
            in
            bump reg "msdq_bytes_shipped_total" (q_labels st "I")
              l.l_ship_bytes;
            critical_transfer ctx ~src:l.l_site ~dst:ctx.gsite
              ~payload:l.l_ship_bytes
              ~label:(Printf.sprintf "serve:q%d:ship-results:%s" p.p_index l.l_db)
              ~attrs:q ~deps:[ last ] ())
          locals
      in
      let c = cost_of ctx in
      let group_promises =
        List.filter_map
          (fun g ->
            if g.g_wire = [] && not (group_lost g) && not g.g_doomed then None
            else begin
              let osite = Federation.site_of ctx.fed g.g_origin in
              let tsite = Federation.site_of ctx.fed g.g_target in
              let dispatch =
                match Hashtbl.find_opt dispatch_of g.g_origin with
                | Some h -> h
                | None -> arrive
              in
              let promise =
                Engine.promise ctx.eng
                  ~label:
                    (Printf.sprintf "serve:q%d:checks:%s->%s" p.p_index
                       g.g_origin g.g_target)
              in
              if g.g_doomed then begin
                (* Deadline abandonment: the anytime answer waits out the
                   query's budget from its arrival, then gives up the round
                   trip without putting anything on the wire. The rows it
                   alone certified already demoted in [prepare]; the local
                   result ships still feed certification — that is the
                   anytime floor. *)
                bump ctx.wl "msdq_checks_abandoned_total" []
                  (List.length g.g_all);
                let budget =
                  match p.p_deadline with Some b -> b | None -> Time.zero
                in
                ignore
                  (Engine.delay ctx.eng ~deps:[ arrive ] ~attrs:q
                     ~label:
                       (Printf.sprintf "serve:q%d:deadline:%s->%s" p.p_index
                          g.g_origin g.g_target)
                     ~duration:budget
                     ~on_complete:(fun () -> Engine.resolve ctx.eng promise)
                     ())
              end
              else if group_lost g then begin
                (* Abandoned round trip: its retransmission waits are pure
                   latency (PR-4 precedent); the rows already demoted. *)
                let wait = Time.add g.g_req_leg.extra_wait g.g_ver_leg.extra_wait in
                bump ctx.wl "msdq_fault_drops_total" []
                  (g.g_req_leg.attempts
                  + if g.g_req_leg.delivered then g.g_ver_leg.attempts else 0);
                bump ctx.wl "msdq_checks_abandoned_total" []
                  (List.length g.g_all);
                ignore
                  (Engine.fence ctx.eng ~deps:[ dispatch ] ~attrs:q
                     ~label:(Printf.sprintf "serve:q%d:lost:%s->%s" p.p_index g.g_origin g.g_target)
                     ~on_complete:(fun () ->
                       ignore
                         (Engine.delay ctx.eng
                            ~label:
                              (Printf.sprintf "serve:q%d:abandon:%s->%s"
                                 p.p_index g.g_origin g.g_target)
                            ~attrs:q ~duration:wait
                            ~on_complete:(fun () ->
                              Engine.resolve ctx.eng promise)
                            ()))
                     ())
              end
              else begin
                let retries = g.g_req_leg.attempts - 1 + (g.g_ver_leg.attempts - 1) in
                bump ctx.wl "msdq_fault_retries_total" [] retries;
                bump ctx.wl "msdq_fault_drops_total" [] retries;
                let payload = Wire.requests_bytes c g.g_wire in
                let contrib =
                  {
                    b_query = p.p_index;
                    b_origin_site = osite;
                    b_n_reqs = List.length g.g_wire;
                    b_payload = payload;
                    b_read_bytes = g.g_wire_read_bytes;
                    b_serve_units = g.g_wire_serve_units;
                    b_verdict_bytes = g.g_wire_verdicts * Wire.verdict_bytes c;
                    b_promise = promise;
                    b_reg = reg;
                    b_strategy = Strategy.to_string st;
                  }
                in
                let clean = retries = 0 in
                ignore
                  (Engine.fence ctx.eng ~deps:[ dispatch ] ~attrs:q
                     ~label:
                       (Printf.sprintf "serve:q%d:dispatch:%s->%s" p.p_index
                          g.g_origin g.g_target)
                     ~on_complete:(fun () ->
                       if clean then
                         batcher_add ctx ~target_db:g.g_target ~tsite contrib
                       else
                         (* A retry-laden round trip cannot share the
                            window: it replays its own waits first, then
                            flushes alone. *)
                         ignore
                           (Engine.delay ctx.eng
                              ~label:
                                (Printf.sprintf "serve:q%d:retry-wait:%s->%s"
                                   p.p_index g.g_origin g.g_target)
                              ~attrs:q
                              ~duration:
                                (Time.add g.g_req_leg.extra_wait
                                   g.g_ver_leg.extra_wait)
                              ~on_complete:(fun () ->
                                flush ctx ~target_db:g.g_target ~tsite
                                  [ contrib ])
                              ()))
                     ())
              end;
              Some promise
            end)
          groups
      in
      let certify =
        cpu_task ctx reg st ~site:ctx.gsite ~phase:"I" ~attrs:q
          ~label:(Printf.sprintf "serve:q%d:certify" p.p_index)
          ~units:p.p_certify_units
          ~deps:(ships @ group_promises)
      in
      finishf certify

(* ------------------------------------------------------------------ *)

let answer_fingerprint answer =
  let buf = Buffer.create 256 in
  List.iter
    (fun (r : Answer.row) ->
      Buffer.add_string buf (Oid.Goid.to_string r.Answer.goid);
      Buffer.add_char buf '|';
      Buffer.add_string buf (Answer.status_to_string r.Answer.status);
      Buffer.add_char buf '|';
      List.iter
        (fun v ->
          Buffer.add_string buf (Value.to_string v);
          Buffer.add_char buf ',')
        r.Answer.values;
      Buffer.add_char buf '\n')
    (Answer.rows answer);
  Oid.Goid.Set.iter
    (fun g ->
      Buffer.add_string buf "degraded ";
      Buffer.add_string buf (Oid.Goid.to_string g);
      (match Answer.degraded_reason answer g with
      | Some why ->
          Buffer.add_string buf ": ";
          Buffer.add_string buf (Answer.reason_to_string why)
      | None -> ());
      Buffer.add_char buf '\n')
    (Answer.degraded answer);
  Buffer.contents buf

(* Telemetry pass over the engine trace: per-(strategy, site, resource,
   phase) task-duration histograms, read back from each entry's attrs.
   Gated behind [options.telemetry] so default registry dumps keep their
   golden bytes. *)
let record_task_histograms wl entries =
  List.iter
    (fun (e : Trace.entry) ->
      match (e.Trace.site, e.Trace.kind) with
      | Some site, Some kind ->
          let attr k =
            Option.value ~default:"-" (List.assoc_opt k e.Trace.attrs)
          in
          let h =
            Metrics.histogram wl
              ~labels:
                [
                  ("strategy", attr "strategy");
                  ("site", string_of_int site);
                  ("resource", Resource.kind_to_string kind);
                  ("phase", attr "phase");
                ]
              "msdq_task_duration_us"
          in
          Metrics.observe h (Time.to_us (Time.sub e.Trace.finish e.Trace.start))
      | _ -> ())
    entries

(* Engine half: charge the prepared workload to one shared simulated clock
   and assemble the outcome. Shared by {!run} (fixed per-job strategies)
   and {!run_auto} (per-query optimizer decisions) — both prepare first,
   then execute, so AUTO can never change what is answered, only when. *)
let execute ~tracer ~wl ~trace ~shed ~max_queue_depth cfg fed ~extent_caches
    ~verdict_cache prepared =
  let telemetry = cfg.options.Strategy.telemetry in
  let eng = Engine.create ~trace:(trace || telemetry) () in
  List.iter
    (fun (site, factor) ->
      Engine.set_speed eng ~site ~kind:Resource.Cpu ~factor;
      Engine.set_speed eng ~site ~kind:Resource.Disk ~factor)
    cfg.options.Strategy.site_speeds;
  (* Gray slowdowns stretch CPU/disk work at execution time, exactly like
     the solo path's fault judge. Link faults stay host-side (fates are
     precomputed at admission; critical transfers never drop), so the
     judge deliberately leaves Link tasks alone. Only installed when the
     schedule has slowdown windows — otherwise the engine runs judge-free
     as before. *)
  (let sched = cfg.options.Strategy.fault in
   if sched.Fault.slowdowns <> [] then
     Engine.set_judge eng (fun ~site ~kind ~src:_ ~label:_ ~start ~duration ->
         match kind with
         | Resource.Link -> None
         | Resource.Cpu | Resource.Disk -> (
             match Fault.slow_factor sched ~site ~at:start with
             | f when f > 1.0 ->
                 Some
                   {
                     Engine.fault_duration =
                       Time.us (Time.to_us duration *. f);
                     fault_drop = None;
                   }
             | _ -> None)));
  let ctx =
    {
      cfg;
      fed;
      eng;
      wl;
      gsite = Federation.global_site fed;
      batchers = Hashtbl.create 4;
      messages = 0;
      coalesced = 0;
    }
  in
  let n = List.length prepared in
  (* Shedding leaves holes in the index space: size completions by the
     largest admitted index, not the admitted count. *)
  let slots =
    List.fold_left (fun m (p : prepared) -> max m (p.p_index + 1)) 1 prepared
  in
  let completions = Array.make slots Time.zero in
  let completed i t = completions.(i) <- t in
  Tracer.with_span tracer ~cat:"serve" "serve.build" (fun () ->
      List.iter (fun p -> build_query ctx p ~completed) prepared);
  Tracer.with_span tracer ~cat:"serve" "serve.run" (fun () -> Engine.run eng);
  let makespan = Array.fold_left Time.max Time.zero completions in
  let reports =
    List.map
      (fun p ->
        bump wl "msdq_deadline_demotions_total"
          [ ("strategy", Strategy.to_string p.p_strategy) ]
          p.p_deadline_demoted;
        {
          index = p.p_index;
          strategy = p.p_strategy;
          arrival = p.p_arrival;
          completed = completions.(p.p_index);
          latency = Time.sub completions.(p.p_index) p.p_arrival;
          answer = p.p_answer;
          extent_hits = p.p_extent_hits;
          verdict_hits = p.p_verdict_hits;
          deadline_demoted = p.p_deadline_demoted;
          registry = p.p_registry;
        })
      prepared
  in
  let extent_stats =
    Hashtbl.fold
      (fun _ cache (acc : Lru.stats) ->
        let s = Lru.stats cache in
        {
          Lru.hits = acc.Lru.hits + s.Lru.hits;
          misses = acc.Lru.misses + s.Lru.misses;
          evictions = acc.Lru.evictions + s.Lru.evictions;
          invalidations = acc.Lru.invalidations + s.Lru.invalidations;
          entries = acc.Lru.entries + s.Lru.entries;
          bytes = acc.Lru.bytes + s.Lru.bytes;
        })
      extent_caches
      {
        Lru.hits = 0;
        misses = 0;
        evictions = 0;
        invalidations = 0;
        entries = 0;
        bytes = 0;
      }
  in
  let verdict_stats = Lru.stats verdict_cache in
  (* Per-destination observed check-leg latency: the modeled one-way
     latency of every delivered leg (inflation and jitter included, retry
     waits excluded — loss is a separate signal), averaged per site. This
     is what a real sender's RTT estimator would see, and what the
     telemetry store records for adaptive timeouts to consult. *)
  let check_latency =
    let c = cfg.options.Strategy.cost in
    let sched = cfg.options.Strategy.fault in
    let gsite = Federation.global_site fed in
    let tbl : (int, float ref * int ref) Hashtbl.t = Hashtbl.create 8 in
    let observe ~site us =
      match Hashtbl.find_opt tbl site with
      | Some (sum, count) ->
          sum := !sum +. us;
          incr count
      | None -> Hashtbl.add tbl site (ref us, ref 1)
    in
    List.iter
      (fun (p : prepared) ->
        match p.p_plan with
        | Centralized _ -> ()
        | Localized { groups; _ } ->
            List.iter
              (fun g ->
                let tsite = Federation.site_of fed g.g_target in
                let leg ~src ~dst ~payload ~what =
                  let base =
                    Cost.net c ~bytes:(payload + cfg.msg_header_bytes)
                  in
                  let d, _ =
                    Fault.link_fate sched ~src ~dst
                      ~label:
                        (Printf.sprintf "serve:q%d:%s->%s:%s" p.p_index
                           g.g_origin g.g_target what)
                      ~start:p.p_arrival ~duration:base ()
                  in
                  Time.to_us d
                in
                if g.g_req_leg.delivered then
                  observe ~site:tsite
                    (leg ~src:gsite ~dst:tsite
                       ~payload:(Wire.requests_bytes c g.g_wire)
                       ~what:"req");
                if g.g_req_leg.delivered && g.g_ver_leg.delivered then
                  observe ~site:gsite
                    (leg ~src:tsite ~dst:gsite
                       ~payload:(g.g_wire_verdicts * Wire.verdict_bytes c)
                       ~what:"verdict"))
              groups)
      prepared;
    Hashtbl.fold
      (fun site (sum, count) acc ->
        (site, !sum /. float_of_int !count, !count) :: acc)
      tbl []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  let cache_counters label (s : Lru.stats) =
    bump wl "msdq_cache_hits_total" [ ("cache", label) ] s.Lru.hits;
    bump wl "msdq_cache_misses_total" [ ("cache", label) ] s.Lru.misses;
    bump wl "msdq_cache_evictions_total" [ ("cache", label) ] s.Lru.evictions;
    bump wl "msdq_cache_invalidations_total" [ ("cache", label) ]
      s.Lru.invalidations
  in
  cache_counters "extent" extent_stats;
  cache_counters "verdict" verdict_stats;
  bump wl "msdq_coalesced_checks_total" [] ctx.coalesced;
  List.iter
    (fun s ->
      bump wl "msdq_shed_total"
        [ ("policy", shed_policy_to_string s.s_policy) ]
        1)
    shed;
  Metrics.set
    (Metrics.gauge wl "msdq_queue_depth")
    (float_of_int max_queue_depth);
  let entries = Trace.entries (Engine.trace eng) in
  if telemetry then begin
    record_task_histograms wl entries;
    List.iter
      (fun r ->
        let h =
          Metrics.histogram wl
            ~labels:[ ("strategy", Strategy.to_string r.strategy) ]
            "msdq_query_latency_us"
        in
        Metrics.observe h (Time.to_us r.latency))
      reports
  end;
  {
    reports;
    shed;
    makespan;
    throughput =
      (if Time.compare makespan Time.zero > 0 then
         float_of_int n /. Time.to_s makespan
       else 0.0);
    extent_cache = extent_stats;
    verdict_cache = verdict_stats;
    messages = ctx.messages;
    coalesced_checks = ctx.coalesced;
    max_queue_depth;
    check_latency;
    registry = wl;
    trace = entries;
  }

(* One arrival through the bounded queue. Returns [`Shed] or
   [`Admit (strategy, qdelay, predicted response, evicted index)].
   [degrade_to] supplies the cheapest predicted plan (only consulted when
   the Degrade policy fires over capacity); [predicted] maps a strategy to
   its [(total, response)] Planner prediction. The virtual single-server
   queue charges each query its predicted {e total} work: a single server
   has no idle parallelism to exploit, so total charged work — not the
   critical-path response the model credits with cross-site overlap — is
   the occupancy unit, and over-estimating service sheds early, the safe
   direction for a tail-latency bound. Deadline fating keeps using the
   response: the budget races the verdicts' critical path, not the
   server's occupancy. *)
let admission_step adm cfg ~index ~arrival ~deadline ~strategy ~degrade_to
    ~predicted =
  let admit ~evicted st =
    let service, response = predicted st in
    let qdelay = admission_push adm ~index ~arrival ~service in
    admission_observe_miss adm ~deadline ~qdelay ~service:response;
    `Admit (st, qdelay, response, evicted)
  in
  if not (over_capacity adm ~at:arrival) then admit ~evicted:None strategy
  else
    match cfg.shed_policy with
    | Degrade -> admit ~evicted:None (degrade_to ())
    | Reject_newest -> `Shed
    | Reject_oldest -> (
        match admission_evict_oldest adm ~at:arrival with
        | Some victim -> admit ~evicted:(Some victim) strategy
        | None -> `Shed)

let run ?(tracer = Tracer.disabled) ?registry ?(trace = false) cfg fed jobs =
  validate cfg jobs;
  let wl = match registry with Some r -> r | None -> Metrics.create () in
  let extent_caches : (int, slice list Lru.t) Hashtbl.t = Hashtbl.create 8 in
  let verdict_cache = Lru.create ~capacity_bytes:cfg.cache_bytes in
  let signatures = lazy (Sig_catalog.build fed) in
  let cost = cfg.options.Strategy.cost in
  let adm = admission_create cfg in
  (* Predictions cost catalog work; skip them entirely when no overload
     control is configured, so unbounded serving is byte-for-byte the
     pre-overload engine. *)
  let need_pred =
    cfg.deadline <> None || cfg.queue_limit <> None
    || List.exists (fun (j : job) -> j.deadline <> None) jobs
  in
  let predicted_of st analysis =
    if not need_pred then (Time.zero, Time.zero)
    else
      match Planner.predict ~cost ~strategies:[ st ] fed analysis with
      | [ pr ] -> (pr.Planner.total, pr.Planner.response)
      | _ -> (Time.zero, Time.zero)
  in
  let rev_shed = ref [] in
  let rev_prepared = ref [] in
  let shed_victim ~policy victim =
    match
      List.find_opt (fun p -> p.p_index = victim) !rev_prepared
    with
    | Some vp ->
        rev_prepared :=
          List.filter (fun p -> p.p_index <> victim) !rev_prepared;
        rev_shed :=
          {
            s_index = victim;
            s_strategy = vp.p_strategy;
            s_arrival = vp.p_arrival;
            s_policy = policy;
          }
          :: !rev_shed
    | None -> ()
  in
  Tracer.with_span tracer ~cat:"serve" "serve.prepare" (fun () ->
      List.iteri
        (fun i (j : job) ->
          let deadline =
            match j.deadline with Some _ as d -> d | None -> cfg.deadline
          in
          match
            admission_step adm cfg ~index:i ~arrival:j.arrival ~deadline
              ~strategy:j.strategy
              ~degrade_to:(fun () ->
                fst
                  (Planner.choose ~cost ~strategies:Optimizer.candidates
                     ~objective:Planner.Response_time fed j.analysis))
              ~predicted:(fun st -> predicted_of st j.analysis)
          with
          | `Shed ->
              rev_shed :=
                {
                  s_index = i;
                  s_strategy = j.strategy;
                  s_arrival = j.arrival;
                  s_policy = cfg.shed_policy;
                }
                :: !rev_shed
          | `Admit (st, qdelay, response, evicted) ->
              (match evicted with
              | Some victim -> shed_victim ~policy:cfg.shed_policy victim
              | None -> ());
              let p =
                Tracer.with_span tracer ~cat:"serve"
                  ~args:[ ("query", string_of_int i) ]
                  "serve.prepare.query"
                @@ fun () ->
                prepare cfg fed tracer ~extent_caches ~verdict_cache
                  ~signatures ~qdelay ~predicted:response i
                  { j with strategy = st }
              in
              rev_prepared := p :: !rev_prepared)
        jobs);
  let prepared = List.rev !rev_prepared in
  let shed =
    List.sort (fun a b -> compare a.s_index b.s_index) !rev_shed
  in
  execute ~tracer ~wl ~trace ~shed ~max_queue_depth:adm.a_max_depth cfg fed
    ~extent_caches ~verdict_cache prepared

(* ------------------------------------------------------------------ *)
(* AUTO: adaptive per-query strategy selection with breaker-driven
   re-planning. *)

type auto_decision = {
  d_index : int;
  d_arrival : Time.t;
  d_preferred : Strategy.t;
  d_chosen : Strategy.t;
  d_switched : bool;
  d_reason : string option;
}

type auto_outcome = {
  auto : outcome;
  decisions : auto_decision list;
  switches : int;
}

let run_auto ?(tracer = Tracer.disabled) ?registry ?(trace = false) ?store
    ?objective cfg fed jobs =
  (* The optimizer only ever picks serve-supported strategies
     ([Optimizer.candidates] = CA, BL, PL), so validation with a fixed
     placeholder checks exactly the config and arrival constraints. *)
  validate cfg
    (List.map
       (fun (analysis, arrival) ->
         { strategy = Strategy.Bl; analysis; arrival; deadline = None })
       jobs);
  let wl = match registry with Some r -> r | None -> Metrics.create () in
  let extent_caches : (int, slice list Lru.t) Hashtbl.t = Hashtbl.create 8 in
  let verdict_cache = Lru.create ~capacity_bytes:cfg.cache_bytes in
  let signatures = lazy (Sig_catalog.build fed) in
  let sched = cfg.options.Strategy.fault in
  let cost = cfg.options.Strategy.cost in
  let adm = admission_create cfg in
  let breaker =
    Recovery.Breaker.create
      ~threshold:cfg.options.Strategy.recovery.Recovery.breaker_threshold
      ~sched ()
  in
  let switches = ref 0 in
  let rev_decisions = ref [] in
  let rev_shed = ref [] in
  let rev_prepared = ref [] in
  (* Gray detection: a per-site EWMA over "slow check leg" observations
     from earlier queries. A delivered leg counts as slow when adaptive
     timeouts are armed and its latency exceeds the site's fault-free
     baseline by [gray_slow_ratio] — in the simulation the observed/
     baseline ratio is exactly the schedule's stretch (link inflation, or
     the target's slowdown factor for the serving work), so the detector
     reduces to comparing the stretch itself. Purely causal: query i's
     decision sees only legs of queries < i, and static-timeout runs never
     mark anything gray (the historical behaviour). *)
  let adaptive_on = cfg.options.Strategy.retry.Strategy.adaptive <> None in
  let gray_ewma : (int, float ref) Hashtbl.t = Hashtbl.create 8 in
  let gray_cell site =
    match Hashtbl.find_opt gray_ewma site with
    | Some r -> r
    | None ->
        let r = ref 0.0 in
        Hashtbl.add gray_ewma site r;
        r
  in
  Tracer.with_span tracer ~cat:"serve" "serve.prepare" (fun () ->
      List.iteri
        (fun i (analysis, arrival) ->
          (* Mid-stream re-planning: a link whose breaker opened on earlier
             queries' check legs is degraded for every query admitted before
             its half-open probe instant. *)
          let degraded =
            List.filter_map
              (fun (db_name, _) ->
                let site = Federation.site_of fed db_name in
                if Recovery.Breaker.live breaker ~site ~at:arrival then None
                else Some site)
              (Federation.databases fed)
          in
          let gray =
            Hashtbl.fold
              (fun site r acc ->
                if !r > gray_threshold then site :: acc else acc)
              gray_ewma []
          in
          (* Backpressure: the virtual queue's depth plus the deadline-miss
             EWMA penalize expensive candidates inside the optimizer. *)
          let overload = admission_overload adm ~at:arrival in
          let d =
            Optimizer.decide ?store ?objective ~degraded ~gray ~overload fed
              analysis
          in
          (match d.Optimizer.reason with
          | Some r
            when String.length r >= 13 && String.sub r 0 13 = "check site(s)"
            ->
              bump wl "msdq_gray_fallbacks_total" [] 1
          | _ -> ());
          let predicted_of st =
            match
              List.find_opt
                (fun pr -> pr.Planner.strategy = st)
                d.Optimizer.predictions
            with
            | Some pr -> (pr.Planner.total, pr.Planner.response)
            | None -> (
                match Planner.predict ~cost ~strategies:[ st ] fed analysis with
                | [ pr ] -> (pr.Planner.total, pr.Planner.response)
                | _ -> (Time.zero, Time.zero))
          in
          match
            admission_step adm cfg ~index:i ~arrival ~deadline:cfg.deadline
              ~strategy:d.Optimizer.chosen
              ~degrade_to:(fun () ->
                match
                  List.sort
                    (fun a b ->
                      Float.compare
                        (Time.to_us a.Planner.response)
                        (Time.to_us b.Planner.response))
                    d.Optimizer.predictions
                with
                | best :: _ -> best.Planner.strategy
                | [] -> d.Optimizer.chosen)
              ~predicted:predicted_of
          with
          | `Shed ->
              rev_shed :=
                {
                  s_index = i;
                  s_strategy = d.Optimizer.chosen;
                  s_arrival = arrival;
                  s_policy = cfg.shed_policy;
                }
                :: !rev_shed
          | `Admit (st, qdelay, response, evicted) ->
              (match evicted with
              | Some victim -> (
                  match
                    List.find_opt (fun p -> p.p_index = victim) !rev_prepared
                  with
                  | Some vp ->
                      rev_prepared :=
                        List.filter
                          (fun p -> p.p_index <> victim)
                          !rev_prepared;
                      rev_shed :=
                        {
                          s_index = victim;
                          s_strategy = vp.p_strategy;
                          s_arrival = vp.p_arrival;
                          s_policy = cfg.shed_policy;
                        }
                        :: !rev_shed
                  | None -> ())
              | None -> ());
              let forced = st <> d.Optimizer.chosen in
              if d.Optimizer.switched || forced then incr switches;
              bump wl "msdq_auto_decisions_total"
                [ ("strategy", Strategy.to_string st) ]
                1;
              rev_decisions :=
                {
                  d_index = i;
                  d_arrival = arrival;
                  d_preferred = d.Optimizer.preferred;
                  d_chosen = st;
                  d_switched = d.Optimizer.switched || forced;
                  d_reason =
                    (if forced then
                       Some
                         (Printf.sprintf
                            "over capacity: degraded plan to cheapest \
                             predicted (%s)"
                            (Strategy.to_string st))
                     else d.Optimizer.reason);
                }
                :: !rev_decisions;
              let p =
                Tracer.with_span tracer ~cat:"serve"
                  ~args:
                    [
                      ("query", string_of_int i);
                      ("strategy", Strategy.to_string st);
                    ]
                  "serve.prepare.query"
                @@ fun () ->
                prepare cfg fed tracer ~extent_caches ~verdict_cache
                  ~signatures ~qdelay ~predicted:response i
                  { strategy = st; analysis; arrival; deadline = None }
              in
              (* Feed the breaker from this query's check-request legs
                 (request legs only — verdict legs terminate at the global
                 site, which has no alternative route; see
                 {!Recovery.Breaker}). *)
              (match p.p_plan with
              | Centralized _ -> ()
              | Localized { groups; _ } ->
                List.iter
                  (fun g ->
                    let tsite = Federation.site_of fed g.g_target in
                    let leg = g.g_req_leg in
                    let failures =
                      if leg.delivered then leg.attempts - 1 else leg.attempts
                    in
                    for _ = 1 to failures do
                      Recovery.Breaker.failure breaker ~site:tsite ~at:arrival
                    done;
                    if leg.delivered then
                      Recovery.Breaker.success breaker ~site:tsite;
                    (* Feed the gray EWMA from every leg the detector could
                       time: delivered legs observe their stretch, and a
                       leg that was not slow decays the signal. *)
                    if adaptive_on && leg.delivered then begin
                      let stretch =
                        Float.max
                          (link_inflate sched ~dst:tsite)
                          (Fault.slow_factor sched ~site:tsite ~at:arrival)
                      in
                      let slow = stretch >= gray_slow_ratio in
                      if slow then bump wl "msdq_gray_slow_legs_total" [] 1;
                      let cell = gray_cell tsite in
                      cell :=
                        ((1.0 -. gray_alpha) *. !cell)
                        +. (gray_alpha *. if slow then 1.0 else 0.0)
                    end)
                  groups);
              rev_prepared := p :: !rev_prepared)
        jobs);
  bump wl "msdq_auto_switches_total" [] !switches;
  let prepared = List.rev !rev_prepared in
  let shed =
    List.sort (fun a b -> compare a.s_index b.s_index) !rev_shed
  in
  let outcome =
    execute ~tracer ~wl ~trace ~shed ~max_queue_depth:adm.a_max_depth cfg fed
      ~extent_caches ~verdict_cache prepared
  in
  { auto = outcome; decisions = List.rev !rev_decisions; switches = !switches }
