open Msdq_odb
open Msdq_simkit
open Msdq_fed
open Msdq_query
open Msdq_exec
module Fault = Msdq_fault.Fault
module Metrics = Msdq_obs.Metrics
module Tracer = Msdq_obs.Tracer

type config = {
  options : Strategy.options;
  cache_bytes : int;
  window : Time.t;
  msg_header_bytes : int;
}

let default_config =
  {
    options = Strategy.default_options;
    cache_bytes = 4 * 1024 * 1024;
    window = Time.zero;
    msg_header_bytes = 64;
  }

type job = { strategy : Strategy.t; analysis : Analysis.t; arrival : Time.t }

type query_report = {
  index : int;
  strategy : Strategy.t;
  arrival : Time.t;
  completed : Time.t;
  latency : Time.t;
  answer : Answer.t;
  extent_hits : int;
  verdict_hits : int;
  registry : Metrics.t;
}

type outcome = {
  reports : query_report list;
  makespan : Time.t;
  throughput : float;
  extent_cache : Lru.stats;
  verdict_cache : Lru.stats;
  messages : int;
  coalesced_checks : int;
  registry : Metrics.t;
  trace : Trace.entry list;
}

let throughput (o : outcome) = o.throughput

(* ------------------------------------------------------------------ *)
(* Validation *)

let validate cfg jobs =
  Strategy.validate_options cfg.options;
  if cfg.options.Strategy.deep_certify then
    invalid_arg "Serve: deep_certify is not supported by the workload engine";
  if cfg.cache_bytes < 0 then invalid_arg "Serve: negative cache_bytes";
  if cfg.msg_header_bytes < 0 then invalid_arg "Serve: negative msg_header_bytes";
  if (not (Time.is_finite cfg.window)) || Time.compare cfg.window Time.zero < 0
  then invalid_arg "Serve: window must be non-negative and finite";
  let _ =
    List.fold_left
      (fun prev (j : job) ->
        if j.strategy = Strategy.Cf then
          invalid_arg "Serve: strategy CF has no serve-path integration";
        if (not (Time.is_finite j.arrival))
           || Time.compare j.arrival Time.zero < 0
        then invalid_arg "Serve: job arrivals must be non-negative and finite";
        if Time.compare j.arrival prev < 0 then
          invalid_arg "Serve: jobs must be listed in non-decreasing arrival order";
        j.arrival)
      Time.zero jobs
  in
  ()

(* ------------------------------------------------------------------ *)
(* Fault fating — pure, timing-independent.

   Every check round trip's fate is a function of the schedule and the
   query's arrival instant only: drop draws use the schedule's pure hash
   with synthetic per-(query, leg, attempt) labels and the arrival as the
   draw's [start]. Caching can therefore never change which rows demote. *)

let site_generation (s : Fault.schedule) ~site ~at =
  List.fold_left
    (fun acc (sf : Fault.site_faults) ->
      if sf.Fault.site = site then
        acc
        + List.length
            (List.filter
               (fun (w : Fault.window) -> Time.compare w.Fault.up at <= 0)
               sf.Fault.outages)
      else acc)
    0 s.Fault.sites

let link_drop (s : Fault.schedule) ~dst =
  match List.find_opt (fun (l : Fault.link_faults) -> l.Fault.dst = dst) s.Fault.links with
  | Some l -> l.Fault.drop
  | None -> 0.0

let link_inflate (s : Fault.schedule) ~dst =
  match List.find_opt (fun (l : Fault.link_faults) -> l.Fault.dst = dst) s.Fault.links with
  | Some l -> l.Fault.inflate
  | None -> 1.0

type leg = {
  delivered : bool;
  attempts : int;  (** attempts consumed, including the successful one *)
  extra_wait : Time.t;  (** retransmission waits accumulated before giving
                            up or succeeding *)
}

let leg_fate sched (retry : Strategy.retry) ~dst ~label ~at =
  let p = link_drop sched ~dst in
  let down = Fault.site_down sched ~site:dst ~at in
  let wait_of k =
    Time.us
      (Time.to_us retry.Strategy.timeout
      *. (retry.Strategy.backoff ** float_of_int (k - 1)))
  in
  let rec go k wait =
    let dropped =
      down
      || Fault.drop_draw sched ~dst
           ~label:(Printf.sprintf "%s:a%d" label k)
           ~start:at ~p
    in
    if not dropped then { delivered = true; attempts = k; extra_wait = wait }
    else
      let wait = Time.add wait (wait_of k) in
      if k >= retry.Strategy.max_attempts then
        { delivered = false; attempts = k; extra_wait = wait }
      else go (k + 1) wait
  in
  go 1 Time.zero

(* ------------------------------------------------------------------ *)
(* Host-side preparation: real answers, cache decisions, fault fates.

   All data decisions happen here, in job-admission order, before any
   simulated time elapses — the engine pass below only charges durations.
   This is what makes the whole workload's answers independent of engine
   interleaving, cache capacity and batching window by construction. *)

type check_group = {
  g_origin : string;
  g_target : string;
  g_all : Checks.request list;
  g_wire : Checks.request list;  (* cache misses actually shipped *)
  g_hits : Checks.verdict list;  (* served from the verdict cache *)
  g_full_verdicts : Checks.verdict list;  (* every request answered *)
  g_wire_read_bytes : int;
  g_wire_serve_units : int;
  g_wire_verdicts : int;
  g_req_leg : leg;
  g_ver_leg : leg;
}

let group_lost g = not (g.g_req_leg.delivered && g.g_ver_leg.delivered)

type local_db = {
  l_db : string;
  l_site : int;
  l_result : Local_result.t;
  l_built : Checks.built;
  l_probe_units : int option;  (* PL only *)
  l_read_bytes : int;
  l_read_hit : bool;
  l_eval_units : int;
  l_dispatch_units : int;
  l_ship_bytes : int;
}

type qplan =
  | Centralized of {
      ca_ships : (string * int * int * bool) list;
          (* db, site, extent bytes, cache hit *)
      ca_units : int;  (* integrate + eval + lookups, at the global site *)
    }
  | Localized of { locals : local_db list; groups : check_group list }

type prepared = {
  p_index : int;
  p_strategy : Strategy.t;
  p_arrival : Time.t;
  p_plan : qplan;
  p_answer : Answer.t;
  p_certify_units : int;
  p_extent_hits : int;
  p_verdict_hits : int;
  p_registry : Metrics.t;
}

let involved_sig involved =
  String.concat ";"
    (List.map
       (fun gcls ->
         gcls ^ ":" ^ String.concat "," (Involved.attrs_of_class involved gcls))
       (Involved.classes involved))

let units_of_work = Meter.units

(* One extent cache per site: each site owns [cache_bytes] of cache RAM. *)
let extent_cache_of caches ~cache_bytes ~site =
  match Hashtbl.find_opt caches site with
  | Some c -> c
  | None ->
      let c = Lru.create ~capacity_bytes:cache_bytes in
      Hashtbl.add caches site c;
      c

let prepare cfg fed tracer ~extent_caches ~verdict_cache ~signatures index
    (j : job) =
  let opts = cfg.options in
  let sched = opts.Strategy.fault in
  let c = opts.Strategy.cost in
  let caching = cfg.cache_bytes > 0 in
  let gs = Federation.global_schema fed in
  let gsite = Federation.global_site fed in
  let analysis = j.analysis in
  let involved = Involved.compute (Global_schema.schema gs) analysis in
  let isig = involved_sig involved in
  let at = j.arrival in
  let registry = Metrics.create () in
  let extent_hits = ref 0 in
  let verdict_hits = ref 0 in
  (* Generation of a cache at [holder]: the holder's crashes wipe its RAM;
     for artifacts derived from another site's data ([source]), that site's
     crashes stale the copy too. *)
  let gen ~holder ~source =
    site_generation sched ~site:holder ~at
    + if source = holder then 0 else site_generation sched ~site:source ~at
  in
  match j.strategy with
  | Strategy.Cf -> assert false (* rejected by [validate] *)
  | Strategy.Ca ->
      let outcome = Ca.run ~multi_valued:opts.Strategy.multi_valued ~tracer fed analysis in
      let ca_ships =
        List.map
          (fun (db_name, db) ->
            let site = Federation.site_of fed db_name in
            let bytes = Wire.projected_extent_bytes c involved gs ~db_name ~db in
            let hit =
              caching
              &&
              let cache = extent_cache_of extent_caches ~cache_bytes:cfg.cache_bytes ~site:gsite in
              let g = gen ~holder:gsite ~source:site in
              let key = Printf.sprintf "ca|%s|%s" db_name isig in
              match Lru.find cache ~gen:g key with
              | Some () -> true
              | None ->
                  Lru.add cache ~gen:g ~key ~bytes ();
                  false
            in
            if hit then incr extent_hits;
            (db_name, site, bytes, hit))
          (Federation.databases fed)
      in
      let m = outcome.Ca.materialize_stats in
      let ca_units =
        m.Materialize.source_objects + m.Materialize.fields_merged
        + outcome.Ca.goid_lookups
        + units_of_work outcome.Ca.eval_work
        + !extent_hits
      in
      {
        p_index = index;
        p_strategy = j.strategy;
        p_arrival = at;
        p_plan = Centralized { ca_ships; ca_units };
        p_answer = outcome.Ca.answer;
        p_certify_units = ca_units;
        p_extent_hits = !extent_hits;
        p_verdict_hits = 0;
        p_registry = registry;
      }
  | (Strategy.Bl | Strategy.Pl | Strategy.Bls | Strategy.Pls | Strategy.Lo) as st ->
      let parallel = st = Strategy.Pl || st = Strategy.Pls in
      let signed = st = Strategy.Bls || st = Strategy.Pls in
      let checks_on = st <> Strategy.Lo in
      let signatures = if signed then Some (Lazy.force signatures) else None in
      let plans = Localize.plan fed analysis in
      let n_targets = List.length analysis.Analysis.targets in
      let locals =
        List.map
          (fun (plan : Localize.db_plan) ->
            let db_name = plan.Localize.db in
            let site = Federation.site_of fed db_name in
            let touched = Touch.count fed analysis ~db:db_name in
            let read_bytes =
              Wire.localized_read_bytes c involved gs ~db_name ~touched
            in
            let read_hit =
              caching
              &&
              let cache = extent_cache_of extent_caches ~cache_bytes:cfg.cache_bytes ~site in
              let g = gen ~holder:site ~source:site in
              let key = Printf.sprintf "loc|%s|%s" db_name isig in
              match Lru.find cache ~gen:g key with
              | Some () -> true
              | None ->
                  Lru.add cache ~gen:g ~key ~bytes:read_bytes ();
                  false
            in
            if read_hit then incr extent_hits;
            let probe =
              if parallel then Some (Probe.run ~tracer fed analysis ~db:db_name)
              else None
            in
            let result = Local_eval.run ~tracer fed analysis ~db:db_name in
            let built =
              if not checks_on then
                {
                  Checks.requests = [];
                  local_verdicts = [];
                  filtered = 0;
                  incapable = 0;
                  root_level = 0;
                  goid_lookups = 0;
                  work = Meter.zero;
                }
              else
                let items =
                  match probe with
                  | Some p -> p.Probe.items
                  | None ->
                      List.concat_map
                        (fun (row : Local_result.row) -> row.Local_result.unsolved)
                        result.Local_result.rows
                in
                Checks.build ?signatures ~tracer fed analysis ~db:db_name
                  ~root_class:plan.Localize.local_class ~items
            in
            {
              l_db = db_name;
              l_site = site;
              l_result = result;
              l_built = built;
              l_probe_units =
                Option.map (fun p -> units_of_work p.Probe.work) probe;
              l_read_bytes = read_bytes;
              l_read_hit = read_hit;
              l_eval_units =
                units_of_work result.Local_result.work
                + List.length result.Local_result.rows;
              l_dispatch_units =
                built.Checks.goid_lookups + units_of_work built.Checks.work;
              l_ship_bytes =
                Wire.results_bytes c ~n_targets result
                + List.length built.Checks.local_verdicts * Wire.verdict_bytes c;
            })
          plans
      in
      (* Check batches per (origin, target), in discovery order. *)
      let batches : (string * string, Checks.request list ref) Hashtbl.t =
        Hashtbl.create 16
      in
      let order = ref [] in
      List.iter
        (fun l ->
          List.iter
            (fun (r : Checks.request) ->
              let key = (r.Checks.origin_db, r.Checks.target_db) in
              match Hashtbl.find_opt batches key with
              | Some acc -> acc := r :: !acc
              | None ->
                  Hashtbl.add batches key (ref [ r ]);
                  order := key :: !order)
            l.l_built.Checks.requests)
        locals;
      let retry = opts.Strategy.retry in
      let groups =
        List.map
          (fun ((origin, target) as key) ->
            let reqs = List.rev !(Hashtbl.find batches key) in
            let tsite = Federation.site_of fed target in
            (* Fate first — a doomed round trip never consults the cache,
               so warm demotions coincide with cold ones. *)
            let req_leg =
              leg_fate sched retry ~dst:tsite
                ~label:(Printf.sprintf "serve:q%d:%s->%s:req" index origin target)
                ~at
            in
            let ver_leg =
              leg_fate sched retry ~dst:gsite
                ~label:(Printf.sprintf "serve:q%d:%s->%s:verdict" index origin target)
                ~at
            in
            let lost = not (req_leg.delivered && ver_leg.delivered) in
            let wire, hits =
              if lost || not caching then (reqs, [])
              else
                let g = gen ~holder:gsite ~source:tsite in
                List.fold_left
                  (fun (wire, hits) (r : Checks.request) ->
                    match
                      Lru.find verdict_cache ~gen:g (Checks.request_signature r)
                    with
                    | Some truth ->
                        ( wire,
                          {
                            Checks.origin_db = r.Checks.origin_db;
                            item = r.Checks.item;
                            atom = r.Checks.atom;
                            truth;
                          }
                          :: hits )
                    | None -> (r :: wire, hits))
                  ([], []) reqs
                |> fun (w, h) -> (List.rev w, List.rev h)
            in
            verdict_hits := !verdict_hits + List.length hits;
            (* Serve the shipped subset; the full set is additionally served
               host-side to anchor the fault-free reference answer. *)
            let served_wire = Checks.serve ~tracer fed ~db:target wire in
            let full =
              if lost || hits = [] then
                (Checks.serve ~tracer fed ~db:target reqs).Checks.verdicts
              else hits @ served_wire.Checks.verdicts
            in
            if (not lost) && caching then
              List.iter2
                (fun (r : Checks.request) (v : Checks.verdict) ->
                  let g = gen ~holder:gsite ~source:tsite in
                  Lru.add verdict_cache ~gen:g
                    ~key:(Checks.request_signature r)
                    ~bytes:(Wire.verdict_bytes c) v.Checks.truth)
                wire served_wire.Checks.verdicts;
            {
              g_origin = origin;
              g_target = target;
              g_all = reqs;
              g_wire = (if lost then reqs else wire);
              g_hits = (if lost then [] else hits);
              g_full_verdicts = full;
              g_wire_read_bytes =
                Wire.check_read_bytes c (if lost then reqs else wire);
              g_wire_serve_units = units_of_work served_wire.Checks.work;
              g_wire_verdicts = List.length served_wire.Checks.verdicts;
              g_req_leg = req_leg;
              g_ver_leg = ver_leg;
            })
          (List.rev !order)
      in
      (* Certification: the fault-free reference uses every verdict; lost
         batches are withheld to find exactly which rows demote. *)
      let results = List.map (fun l -> l.l_result) locals in
      let local_verdicts =
        List.concat_map (fun l -> l.l_built.Checks.local_verdicts) locals
      in
      let full_verdicts =
        local_verdicts @ List.concat_map (fun g -> g.g_full_verdicts) groups
      in
      let ff =
        Certify.run ~multi_valued:opts.Strategy.multi_valued ~tracer fed
          analysis ~results ~verdicts:full_verdicts
      in
      let lost_groups = List.filter group_lost groups in
      let answer =
        if lost_groups = [] then ff.Certify.answer
        else begin
          let surviving =
            local_verdicts
            @ List.concat_map
                (fun g -> if group_lost g then [] else g.g_full_verdicts)
                groups
          in
          let degraded_run =
            Certify.run ~multi_valued:opts.Strategy.multi_valued ~tracer fed
              analysis ~results ~verdicts:surviving
          in
          let demoted =
            Oid.Goid.Set.diff
              (Answer.goids ff.Certify.answer Answer.Certain)
              (Answer.goids degraded_run.Certify.answer Answer.Certain)
          in
          let reason =
            Printf.sprintf "check batch lost: %s"
              (String.concat "; "
                 (List.map
                    (fun g ->
                      Printf.sprintf "%s->%s after %d attempts" g.g_origin
                        g.g_target
                        (max g.g_req_leg.attempts g.g_ver_leg.attempts))
                    lost_groups))
          in
          let demoted_answer = Answer.demote ff.Certify.answer ~goids:demoted in
          Answer.annotate_degraded demoted_answer
            ~reasons:
              (List.map (fun g -> (g, reason)) (Oid.Goid.Set.elements demoted))
        end
      in
      (* Cache provenance: rows certified through at least one cache-served
         verdict. *)
      let answer =
        let hit_keys =
          List.concat_map
            (fun g ->
              List.map
                (fun (v : Checks.verdict) ->
                  (v.Checks.origin_db, Oid.Loid.to_int v.Checks.item, v.Checks.atom))
                g.g_hits)
            groups
        in
        if hit_keys = [] then answer
        else
          let key_set = Hashtbl.create 16 in
          List.iter (fun k -> Hashtbl.replace key_set k ()) hit_keys;
          let goids =
            List.fold_left
              (fun acc (res : Local_result.t) ->
                List.fold_left
                  (fun acc (row : Local_result.row) ->
                    if
                      List.exists
                        (fun (u : Local_result.unsolved) ->
                          Hashtbl.mem key_set
                            ( res.Local_result.db,
                              Oid.Loid.to_int (Dbobject.loid u.Local_result.item),
                              u.Local_result.atom ))
                        row.Local_result.unsolved
                    then Oid.Goid.Set.add row.Local_result.goid acc
                    else acc)
                  acc res.Local_result.rows)
              Oid.Goid.Set.empty results
          in
          Answer.mark_cached answer ~goids
      in
      {
        p_index = index;
        p_strategy = st;
        p_arrival = at;
        p_plan = Localized { locals; groups };
        p_answer = answer;
        p_certify_units =
          units_of_work ff.Certify.work + ff.Certify.goid_lookups
          + !verdict_hits;
        p_extent_hits = !extent_hits;
        p_verdict_hits = !verdict_hits;
        p_registry = registry;
      }

(* ------------------------------------------------------------------ *)
(* Engine pass: charge the shared simulated clock. *)

type contrib = {
  b_query : int;
  b_origin_site : int;
  b_n_reqs : int;  (* wire requests carried *)
  b_payload : int;  (* request bytes, without framing *)
  b_read_bytes : int;
  b_serve_units : int;
  b_verdict_bytes : int;  (* without framing *)
  b_promise : Engine.handle;
  b_reg : Metrics.t;
  b_strategy : string;
}

type batch_state = { mutable contribs : contrib list (* reverse order *) }

type ctx = {
  cfg : config;
  fed : Federation.t;
  eng : Engine.t;
  wl : Metrics.t;
  gsite : int;
  batchers : (int, batch_state) Hashtbl.t;
  mutable messages : int;
  mutable coalesced : int;
}

let sched_of ctx = ctx.cfg.options.Strategy.fault
let cost_of ctx = ctx.cfg.options.Strategy.cost

let bump reg name labels n =
  if n <> 0 then Metrics.inc (Metrics.counter reg ~labels name) n

let q_labels st phase = [ ("strategy", Strategy.to_string st); ("phase", phase) ]

(* The span context every serve-path engine task carries: the owning
   query's trace id (the causal parent edges are the dependency tids the
   engine records on its own). *)
let qattr index = [ ("trace", Printf.sprintf "q%d" index) ]

let disk_task ctx reg st ~site ~phase ~attrs ~label ~bytes ~deps =
  bump reg "msdq_disk_bytes_total" (q_labels st phase) bytes;
  Engine.task ctx.eng ~deps ~site ~kind:Resource.Disk ~label
    ~attrs:(("strategy", Strategy.to_string st) :: ("phase", phase) :: attrs)
    ~duration:(Cost.disk (cost_of ctx) ~bytes)
    ()

let cpu_task ctx reg st ~site ~phase ~attrs ~label ~units ~deps =
  bump reg "msdq_work_units_total" (q_labels st phase) units;
  Engine.task ctx.eng ~deps ~site ~kind:Resource.Cpu ~label
    ~attrs:(("strategy", Strategy.to_string st) :: ("phase", phase) :: attrs)
    ~duration:(Cost.cpu (cost_of ctx) ~units)
    ()

let net_duration ctx ~dst ~bytes =
  let base = Cost.net (cost_of ctx) ~bytes in
  Time.us (Time.to_us base *. link_inflate (sched_of ctx) ~dst)

(* A serve-path message that is never lost: waits out a destination outage
   (computed at send time from the schedule), then occupies the
   destination's link. [payload] excludes the framing header; callers
   attribute shipped bytes to the owning queries' registries themselves
   (a coalesced message splits its payload across contributors). Returns a
   promise completed at delivery. *)
let critical_transfer ctx ~src ~dst ~payload ~label ~deps ?(attrs = [])
    ?(on_delivered = fun () -> ()) () =
  let sched = sched_of ctx in
  let bytes = payload + ctx.cfg.msg_header_bytes in
  ctx.messages <- ctx.messages + 1;
  bump ctx.wl "msdq_messages_total" [ ("path", "serve") ] 1;
  let p = Engine.promise ctx.eng ~label:(label ^ ":done") in
  let send () =
    let now = Engine.now ctx.eng in
    let deps =
      if Fault.site_down sched ~site:dst ~at:now then
        match Fault.next_up sched ~site:dst ~at:now with
        | Some up ->
            [
              Engine.delay ctx.eng ~label:(label ^ ":wait-up") ~attrs
                ~duration:(Time.sub up now) ();
            ]
        | None -> [] (* permanent outage: documented as unreachable-for-
                        checks only; critical sends proceed *)
      else []
    in
    ignore
      (Engine.transfer ctx.eng ~deps ~src ~dst ~label ~attrs
         ~duration:(net_duration ctx ~dst ~bytes)
         ~on_complete:(fun () ->
           on_delivered ();
           Engine.resolve ctx.eng p)
         ())
  in
  ignore
    (Engine.fence ctx.eng ~deps ~label:(label ^ ":ready") ~attrs
       ~on_complete:send ());
  p

(* Flush one coalesced batch to [tsite]: one request message per
   contributing origin site, one read + serve at the target, one verdict
   message to the global site, then every contributor's promise resolves. *)
let flush ctx ~target_db ~tsite contribs =
  let contribs = List.rev contribs in
  let by_origin = Hashtbl.create 4 in
  let origin_order = ref [] in
  List.iter
    (fun c ->
      match Hashtbl.find_opt by_origin c.b_origin_site with
      | Some acc -> acc := c :: !acc
      | None ->
          Hashtbl.add by_origin c.b_origin_site (ref [ c ]);
          origin_order := c.b_origin_site :: !origin_order)
    contribs;
  (* A coalesced message belongs to one query's trace when it carries a
     single query's checks, and to the shared [batch] trace otherwise. *)
  let trace_of cs =
    match List.sort_uniq compare (List.map (fun c -> c.b_query) cs) with
    | [ q ] -> qattr q
    | _ -> [ ("trace", "batch") ]
  in
  let req_done =
    List.map
      (fun osite ->
        let cs = List.rev !(Hashtbl.find by_origin osite) in
        let queries =
          List.sort_uniq compare (List.map (fun c -> c.b_query) cs)
        in
        (* Checks that shared a message with another query's checks. *)
        if List.length queries > 1 then
          ctx.coalesced <-
            ctx.coalesced + List.fold_left (fun acc c -> acc + c.b_n_reqs) 0 cs;
        (* Per-query payloads share one message and one header. *)
        let payload = List.fold_left (fun acc c -> acc + c.b_payload) 0 cs in
        List.iter
          (fun c ->
            bump c.b_reg "msdq_bytes_shipped_total"
              [ ("strategy", c.b_strategy); ("phase", "O") ]
              c.b_payload)
          cs;
        critical_transfer ctx ~src:osite ~dst:tsite ~payload
          ~label:(Printf.sprintf "serve:ship-requests:%s" target_db)
          ~attrs:(trace_of cs) ~deps:[] ())
      (List.rev !origin_order)
  in
  (* The target's disk and CPU are FIFO, so per-contributor tasks keep the
     timing of one fused batch task while attributing work to the query
     that caused it. *)
  let evals =
    List.map
      (fun c ->
        let st =
          match Strategy.of_string c.b_strategy with
          | Some s -> s
          | None -> Strategy.Bl
        in
        let read =
          disk_task ctx c.b_reg st ~site:tsite ~phase:"O"
            ~attrs:(qattr c.b_query)
            ~label:(Printf.sprintf "serve:check-read:%s" target_db)
            ~bytes:c.b_read_bytes ~deps:req_done
        in
        cpu_task ctx c.b_reg st ~site:tsite ~phase:"O"
          ~attrs:(qattr c.b_query)
          ~label:(Printf.sprintf "serve:check-eval:%s" target_db)
          ~units:c.b_serve_units ~deps:[ read ])
      contribs
  in
  let verdict_payload =
    List.fold_left (fun acc c -> acc + c.b_verdict_bytes) 0 contribs
  in
  List.iter
    (fun c ->
      bump c.b_reg "msdq_bytes_shipped_total"
        [ ("strategy", c.b_strategy); ("phase", "O") ]
        c.b_verdict_bytes)
    contribs;
  ignore
    (critical_transfer ctx ~src:tsite ~dst:ctx.gsite
       ~payload:verdict_payload
       ~label:(Printf.sprintf "serve:ship-verdicts:%s" target_db)
       ~attrs:(trace_of contribs) ~deps:evals
       ~on_delivered:(fun () ->
         List.iter (fun c -> Engine.resolve ctx.eng c.b_promise) contribs)
       ())

(* Hand a contribution to the target site's admission window. With a zero
   window it flushes alone; otherwise the first contribution opens the
   window and every contribution arriving before expiry rides along. *)
let batcher_add ctx ~target_db ~tsite contrib =
  if Time.compare ctx.cfg.window Time.zero <= 0 then
    flush ctx ~target_db ~tsite [ contrib ]
  else
    match Hashtbl.find_opt ctx.batchers tsite with
    | Some b -> b.contribs <- contrib :: b.contribs
    | None ->
        let b = { contribs = [ contrib ] } in
        Hashtbl.add ctx.batchers tsite b;
        ignore
          (Engine.delay ctx.eng
             ~label:(Printf.sprintf "serve:window:%s" target_db)
             ~duration:ctx.cfg.window
             ~on_complete:(fun () ->
               Hashtbl.remove ctx.batchers tsite;
               flush ctx ~target_db ~tsite b.contribs)
             ())

let build_query ctx (p : prepared) ~completed =
  let st = p.p_strategy in
  let reg = p.p_registry in
  let q = qattr p.p_index in
  let arrive =
    Engine.delay ctx.eng
      ~label:(Printf.sprintf "serve:q%d:arrival" p.p_index)
      ~attrs:q ~duration:p.p_arrival ()
  in
  let finishf handle =
    ignore
      (Engine.fence ctx.eng ~deps:[ handle ]
         ~label:(Printf.sprintf "serve:q%d:answer" p.p_index)
         ~attrs:q
         ~on_complete:(fun () -> completed p.p_index (Engine.now ctx.eng))
         ())
  in
  match p.p_plan with
  | Centralized { ca_ships; ca_units } ->
      let deps =
        List.map
          (fun (db_name, site, bytes, hit) ->
            if hit then
              cpu_task ctx reg st ~site:ctx.gsite ~phase:"O" ~attrs:q
                ~label:(Printf.sprintf "serve:q%d:cache-extents:%s" p.p_index db_name)
                ~units:1 ~deps:[ arrive ]
            else
              let read =
                disk_task ctx reg st ~site ~phase:"O" ~attrs:q
                  ~label:(Printf.sprintf "serve:q%d:read-extents:%s" p.p_index db_name)
                  ~bytes ~deps:[ arrive ]
              in
              bump reg "msdq_bytes_shipped_total" (q_labels st "O") bytes;
              critical_transfer ctx ~src:site ~dst:ctx.gsite ~payload:bytes
                ~label:(Printf.sprintf "serve:q%d:ship-objects:%s" p.p_index db_name)
                ~attrs:q ~deps:[ read ] ())
          ca_ships
      in
      let integrate =
        cpu_task ctx reg st ~site:ctx.gsite ~phase:"I" ~attrs:q
          ~label:(Printf.sprintf "serve:q%d:integrate-eval" p.p_index)
          ~units:ca_units ~deps
      in
      finishf integrate
  | Localized { locals; groups } ->
      let dispatch_of : (string, Engine.handle) Hashtbl.t = Hashtbl.create 4 in
      let ships =
        List.map
          (fun l ->
            let read =
              if l.l_read_hit then
                cpu_task ctx reg st ~site:l.l_site ~phase:"P" ~attrs:q
                  ~label:(Printf.sprintf "serve:q%d:cache-extents:%s" p.p_index l.l_db)
                  ~units:1 ~deps:[ arrive ]
              else
                disk_task ctx reg st ~site:l.l_site ~phase:"P" ~attrs:q
                  ~label:(Printf.sprintf "serve:q%d:read-extents:%s" p.p_index l.l_db)
                  ~bytes:l.l_read_bytes ~deps:[ arrive ]
            in
            let last =
              match l.l_probe_units with
              | Some probe_units ->
                  (* PL: probe + dispatch overlap evaluation. *)
                  let probe =
                    cpu_task ctx reg st ~site:l.l_site ~phase:"O" ~attrs:q
                      ~label:(Printf.sprintf "serve:q%d:probe:%s" p.p_index l.l_db)
                      ~units:probe_units ~deps:[ read ]
                  in
                  let dispatch =
                    cpu_task ctx reg st ~site:l.l_site ~phase:"O" ~attrs:q
                      ~label:(Printf.sprintf "serve:q%d:dispatch:%s" p.p_index l.l_db)
                      ~units:l.l_dispatch_units ~deps:[ probe ]
                  in
                  Hashtbl.replace dispatch_of l.l_db dispatch;
                  cpu_task ctx reg st ~site:l.l_site ~phase:"P" ~attrs:q
                    ~label:(Printf.sprintf "serve:q%d:local-eval:%s" p.p_index l.l_db)
                    ~units:l.l_eval_units ~deps:[ dispatch ]
              | None ->
                  let eval =
                    cpu_task ctx reg st ~site:l.l_site ~phase:"P" ~attrs:q
                      ~label:(Printf.sprintf "serve:q%d:local-eval:%s" p.p_index l.l_db)
                      ~units:l.l_eval_units ~deps:[ read ]
                  in
                  if l.l_dispatch_units > 0 || l.l_built.Checks.requests <> []
                  then begin
                    let dispatch =
                      cpu_task ctx reg st ~site:l.l_site ~phase:"O" ~attrs:q
                        ~label:(Printf.sprintf "serve:q%d:dispatch:%s" p.p_index l.l_db)
                        ~units:l.l_dispatch_units ~deps:[ eval ]
                    in
                    Hashtbl.replace dispatch_of l.l_db dispatch;
                    dispatch
                  end
                  else eval
            in
            bump reg "msdq_bytes_shipped_total" (q_labels st "I")
              l.l_ship_bytes;
            critical_transfer ctx ~src:l.l_site ~dst:ctx.gsite
              ~payload:l.l_ship_bytes
              ~label:(Printf.sprintf "serve:q%d:ship-results:%s" p.p_index l.l_db)
              ~attrs:q ~deps:[ last ] ())
          locals
      in
      let c = cost_of ctx in
      let group_promises =
        List.filter_map
          (fun g ->
            if g.g_wire = [] && not (group_lost g) then None
            else begin
              let osite = Federation.site_of ctx.fed g.g_origin in
              let tsite = Federation.site_of ctx.fed g.g_target in
              let dispatch =
                match Hashtbl.find_opt dispatch_of g.g_origin with
                | Some h -> h
                | None -> arrive
              in
              let promise =
                Engine.promise ctx.eng
                  ~label:
                    (Printf.sprintf "serve:q%d:checks:%s->%s" p.p_index
                       g.g_origin g.g_target)
              in
              if group_lost g then begin
                (* Abandoned round trip: its retransmission waits are pure
                   latency (PR-4 precedent); the rows already demoted. *)
                let wait = Time.add g.g_req_leg.extra_wait g.g_ver_leg.extra_wait in
                bump ctx.wl "msdq_fault_drops_total" []
                  (g.g_req_leg.attempts
                  + if g.g_req_leg.delivered then g.g_ver_leg.attempts else 0);
                bump ctx.wl "msdq_checks_abandoned_total" []
                  (List.length g.g_all);
                ignore
                  (Engine.fence ctx.eng ~deps:[ dispatch ] ~attrs:q
                     ~label:(Printf.sprintf "serve:q%d:lost:%s->%s" p.p_index g.g_origin g.g_target)
                     ~on_complete:(fun () ->
                       ignore
                         (Engine.delay ctx.eng
                            ~label:
                              (Printf.sprintf "serve:q%d:abandon:%s->%s"
                                 p.p_index g.g_origin g.g_target)
                            ~attrs:q ~duration:wait
                            ~on_complete:(fun () ->
                              Engine.resolve ctx.eng promise)
                            ()))
                     ())
              end
              else begin
                let retries = g.g_req_leg.attempts - 1 + (g.g_ver_leg.attempts - 1) in
                bump ctx.wl "msdq_fault_retries_total" [] retries;
                bump ctx.wl "msdq_fault_drops_total" [] retries;
                let payload = Wire.requests_bytes c g.g_wire in
                let contrib =
                  {
                    b_query = p.p_index;
                    b_origin_site = osite;
                    b_n_reqs = List.length g.g_wire;
                    b_payload = payload;
                    b_read_bytes = g.g_wire_read_bytes;
                    b_serve_units = g.g_wire_serve_units;
                    b_verdict_bytes = g.g_wire_verdicts * Wire.verdict_bytes c;
                    b_promise = promise;
                    b_reg = reg;
                    b_strategy = Strategy.to_string st;
                  }
                in
                let clean = retries = 0 in
                ignore
                  (Engine.fence ctx.eng ~deps:[ dispatch ] ~attrs:q
                     ~label:
                       (Printf.sprintf "serve:q%d:dispatch:%s->%s" p.p_index
                          g.g_origin g.g_target)
                     ~on_complete:(fun () ->
                       if clean then
                         batcher_add ctx ~target_db:g.g_target ~tsite contrib
                       else
                         (* A retry-laden round trip cannot share the
                            window: it replays its own waits first, then
                            flushes alone. *)
                         ignore
                           (Engine.delay ctx.eng
                              ~label:
                                (Printf.sprintf "serve:q%d:retry-wait:%s->%s"
                                   p.p_index g.g_origin g.g_target)
                              ~attrs:q
                              ~duration:
                                (Time.add g.g_req_leg.extra_wait
                                   g.g_ver_leg.extra_wait)
                              ~on_complete:(fun () ->
                                flush ctx ~target_db:g.g_target ~tsite
                                  [ contrib ])
                              ()))
                     ())
              end;
              Some promise
            end)
          groups
      in
      let certify =
        cpu_task ctx reg st ~site:ctx.gsite ~phase:"I" ~attrs:q
          ~label:(Printf.sprintf "serve:q%d:certify" p.p_index)
          ~units:p.p_certify_units
          ~deps:(ships @ group_promises)
      in
      finishf certify

(* ------------------------------------------------------------------ *)

let answer_fingerprint answer =
  let buf = Buffer.create 256 in
  List.iter
    (fun (r : Answer.row) ->
      Buffer.add_string buf (Oid.Goid.to_string r.Answer.goid);
      Buffer.add_char buf '|';
      Buffer.add_string buf (Answer.status_to_string r.Answer.status);
      Buffer.add_char buf '|';
      List.iter
        (fun v ->
          Buffer.add_string buf (Value.to_string v);
          Buffer.add_char buf ',')
        r.Answer.values;
      Buffer.add_char buf '\n')
    (Answer.rows answer);
  Oid.Goid.Set.iter
    (fun g ->
      Buffer.add_string buf "degraded ";
      Buffer.add_string buf (Oid.Goid.to_string g);
      (match Answer.degraded_reason answer g with
      | Some why ->
          Buffer.add_string buf ": ";
          Buffer.add_string buf why
      | None -> ());
      Buffer.add_char buf '\n')
    (Answer.degraded answer);
  Buffer.contents buf

(* Telemetry pass over the engine trace: per-(strategy, site, resource,
   phase) task-duration histograms, read back from each entry's attrs.
   Gated behind [options.telemetry] so default registry dumps keep their
   golden bytes. *)
let record_task_histograms wl entries =
  List.iter
    (fun (e : Trace.entry) ->
      match (e.Trace.site, e.Trace.kind) with
      | Some site, Some kind ->
          let attr k =
            Option.value ~default:"-" (List.assoc_opt k e.Trace.attrs)
          in
          let h =
            Metrics.histogram wl
              ~labels:
                [
                  ("strategy", attr "strategy");
                  ("site", string_of_int site);
                  ("resource", Resource.kind_to_string kind);
                  ("phase", attr "phase");
                ]
              "msdq_task_duration_us"
          in
          Metrics.observe h (Time.to_us (Time.sub e.Trace.finish e.Trace.start))
      | _ -> ())
    entries

(* Engine half: charge the prepared workload to one shared simulated clock
   and assemble the outcome. Shared by {!run} (fixed per-job strategies)
   and {!run_auto} (per-query optimizer decisions) — both prepare first,
   then execute, so AUTO can never change what is answered, only when. *)
let execute ~tracer ~wl ~trace cfg fed ~extent_caches ~verdict_cache prepared =
  let telemetry = cfg.options.Strategy.telemetry in
  let eng = Engine.create ~trace:(trace || telemetry) () in
  List.iter
    (fun (site, factor) ->
      Engine.set_speed eng ~site ~kind:Resource.Cpu ~factor;
      Engine.set_speed eng ~site ~kind:Resource.Disk ~factor)
    cfg.options.Strategy.site_speeds;
  let ctx =
    {
      cfg;
      fed;
      eng;
      wl;
      gsite = Federation.global_site fed;
      batchers = Hashtbl.create 4;
      messages = 0;
      coalesced = 0;
    }
  in
  let n = List.length prepared in
  let completions = Array.make (max n 1) Time.zero in
  let completed i t = completions.(i) <- t in
  Tracer.with_span tracer ~cat:"serve" "serve.build" (fun () ->
      List.iter (fun p -> build_query ctx p ~completed) prepared);
  Tracer.with_span tracer ~cat:"serve" "serve.run" (fun () -> Engine.run eng);
  let makespan = Array.fold_left Time.max Time.zero completions in
  let reports =
    List.map
      (fun p ->
        {
          index = p.p_index;
          strategy = p.p_strategy;
          arrival = p.p_arrival;
          completed = completions.(p.p_index);
          latency = Time.sub completions.(p.p_index) p.p_arrival;
          answer = p.p_answer;
          extent_hits = p.p_extent_hits;
          verdict_hits = p.p_verdict_hits;
          registry = p.p_registry;
        })
      prepared
  in
  let extent_stats =
    Hashtbl.fold
      (fun _ cache (acc : Lru.stats) ->
        let s = Lru.stats cache in
        {
          Lru.hits = acc.Lru.hits + s.Lru.hits;
          misses = acc.Lru.misses + s.Lru.misses;
          evictions = acc.Lru.evictions + s.Lru.evictions;
          invalidations = acc.Lru.invalidations + s.Lru.invalidations;
          entries = acc.Lru.entries + s.Lru.entries;
          bytes = acc.Lru.bytes + s.Lru.bytes;
        })
      extent_caches
      {
        Lru.hits = 0;
        misses = 0;
        evictions = 0;
        invalidations = 0;
        entries = 0;
        bytes = 0;
      }
  in
  let verdict_stats = Lru.stats verdict_cache in
  let cache_counters label (s : Lru.stats) =
    bump wl "msdq_cache_hits_total" [ ("cache", label) ] s.Lru.hits;
    bump wl "msdq_cache_misses_total" [ ("cache", label) ] s.Lru.misses;
    bump wl "msdq_cache_evictions_total" [ ("cache", label) ] s.Lru.evictions;
    bump wl "msdq_cache_invalidations_total" [ ("cache", label) ]
      s.Lru.invalidations
  in
  cache_counters "extent" extent_stats;
  cache_counters "verdict" verdict_stats;
  bump wl "msdq_coalesced_checks_total" [] ctx.coalesced;
  let entries = Trace.entries (Engine.trace eng) in
  if telemetry then begin
    record_task_histograms wl entries;
    List.iter
      (fun r ->
        let h =
          Metrics.histogram wl
            ~labels:[ ("strategy", Strategy.to_string r.strategy) ]
            "msdq_query_latency_us"
        in
        Metrics.observe h (Time.to_us r.latency))
      reports
  end;
  {
    reports;
    makespan;
    throughput =
      (if Time.compare makespan Time.zero > 0 then
         float_of_int n /. Time.to_s makespan
       else 0.0);
    extent_cache = extent_stats;
    verdict_cache = verdict_stats;
    messages = ctx.messages;
    coalesced_checks = ctx.coalesced;
    registry = wl;
    trace = entries;
  }

let run ?(tracer = Tracer.disabled) ?registry ?(trace = false) cfg fed jobs =
  validate cfg jobs;
  let wl = match registry with Some r -> r | None -> Metrics.create () in
  let extent_caches : (int, unit Lru.t) Hashtbl.t = Hashtbl.create 8 in
  let verdict_cache = Lru.create ~capacity_bytes:cfg.cache_bytes in
  let signatures = lazy (Sig_catalog.build fed) in
  let prepared =
    Tracer.with_span tracer ~cat:"serve" "serve.prepare" @@ fun () ->
    List.mapi
      (fun i j ->
        Tracer.with_span tracer ~cat:"serve"
          ~args:[ ("query", string_of_int i) ]
          "serve.prepare.query"
        @@ fun () ->
        prepare cfg fed tracer ~extent_caches ~verdict_cache ~signatures i j)
      jobs
  in
  execute ~tracer ~wl ~trace cfg fed ~extent_caches ~verdict_cache prepared

(* ------------------------------------------------------------------ *)
(* AUTO: adaptive per-query strategy selection with breaker-driven
   re-planning. *)

module Optimizer = Msdq_opt.Optimizer

type auto_decision = {
  d_index : int;
  d_arrival : Time.t;
  d_preferred : Strategy.t;
  d_chosen : Strategy.t;
  d_switched : bool;
  d_reason : string option;
}

type auto_outcome = {
  auto : outcome;
  decisions : auto_decision list;
  switches : int;
}

let run_auto ?(tracer = Tracer.disabled) ?registry ?(trace = false) ?store
    ?objective cfg fed jobs =
  (* The optimizer only ever picks serve-supported strategies
     ([Optimizer.candidates] = CA, BL, PL), so validation with a fixed
     placeholder checks exactly the config and arrival constraints. *)
  validate cfg
    (List.map
       (fun (analysis, arrival) ->
         { strategy = Strategy.Bl; analysis; arrival })
       jobs);
  let wl = match registry with Some r -> r | None -> Metrics.create () in
  let extent_caches : (int, unit Lru.t) Hashtbl.t = Hashtbl.create 8 in
  let verdict_cache = Lru.create ~capacity_bytes:cfg.cache_bytes in
  let signatures = lazy (Sig_catalog.build fed) in
  let sched = cfg.options.Strategy.fault in
  let breaker =
    Recovery.Breaker.create
      ~threshold:cfg.options.Strategy.recovery.Recovery.breaker_threshold
      ~sched ()
  in
  let switches = ref 0 in
  let rev_decisions = ref [] in
  let prepared =
    Tracer.with_span tracer ~cat:"serve" "serve.prepare" @@ fun () ->
    List.mapi
      (fun i (analysis, arrival) ->
        (* Mid-stream re-planning: a link whose breaker opened on earlier
           queries' check legs is degraded for every query admitted before
           its half-open probe instant. *)
        let degraded =
          List.filter_map
            (fun (db_name, _) ->
              let site = Federation.site_of fed db_name in
              if Recovery.Breaker.live breaker ~site ~at:arrival then None
              else Some site)
            (Federation.databases fed)
        in
        let d = Optimizer.decide ?store ?objective ~degraded fed analysis in
        if d.Optimizer.switched then incr switches;
        bump wl "msdq_auto_decisions_total"
          [ ("strategy", Strategy.to_string d.Optimizer.chosen) ]
          1;
        rev_decisions :=
          {
            d_index = i;
            d_arrival = arrival;
            d_preferred = d.Optimizer.preferred;
            d_chosen = d.Optimizer.chosen;
            d_switched = d.Optimizer.switched;
            d_reason = d.Optimizer.reason;
          }
          :: !rev_decisions;
        let p =
          Tracer.with_span tracer ~cat:"serve"
            ~args:
              [
                ("query", string_of_int i);
                ("strategy", Strategy.to_string d.Optimizer.chosen);
              ]
            "serve.prepare.query"
          @@ fun () ->
          prepare cfg fed tracer ~extent_caches ~verdict_cache ~signatures i
            { strategy = d.Optimizer.chosen; analysis; arrival }
        in
        (* Feed the breaker from this query's check-request legs (request
           legs only — verdict legs terminate at the global site, which has
           no alternative route; see {!Recovery.Breaker}). *)
        (match p.p_plan with
        | Centralized _ -> ()
        | Localized { groups; _ } ->
          List.iter
            (fun g ->
              let tsite = Federation.site_of fed g.g_target in
              let leg = g.g_req_leg in
              let failures =
                if leg.delivered then leg.attempts - 1 else leg.attempts
              in
              for _ = 1 to failures do
                Recovery.Breaker.failure breaker ~site:tsite ~at:arrival
              done;
              if leg.delivered then
                Recovery.Breaker.success breaker ~site:tsite)
            groups);
        p)
      jobs
  in
  bump wl "msdq_auto_switches_total" [] !switches;
  let outcome =
    execute ~tracer ~wl ~trace cfg fed ~extent_caches ~verdict_cache prepared
  in
  { auto = outcome; decisions = List.rev !rev_decisions; switches = !switches }
