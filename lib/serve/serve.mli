(** Multi-query workload engine: shared-work execution of a query stream.

    The paper evaluates each strategy on one query at a time; this engine
    admits a {e stream} of analyzed queries against one federation and
    executes them over the same simulated system, sharing work across
    queries through three mechanisms:

    {ul
    {- an {e extent cache} — one {!Lru} per site, holding the projected
       extents a query's localization (or CA's shipping) read, so a later
       query over the same root classes stops re-charging disk I/O;}
    {- a {e verdict cache} at the global site — assistant-check verdicts
       keyed by (target database, assistant LOid, relative predicate), so
       one query's certification round trip certifies the same maybe row in
       later queries. Cache-served certifications are marked on the answer
       ([Msdq_query.Answer.cached]);}
    {- {e cross-query check batching} — check requests destined for the
       same site within an admission [config.window] coalesce into
       one message, amortizing the per-message framing constant
       ([config.msg_header_bytes]) across queries.}}

    Everything is charged to the simulated clock of one shared engine, so
    queries contend for the same FIFO resources exactly where real
    executions would.

    {2 Faults, and why caching never changes an answer}

    The engine composes with the fault schedule in
    [config.options.fault]. The fate of every check round trip is decided
    by {e timing-independent} draws — the schedule's pure per-transfer hash
    keyed by the query's arrival time — {e before} any cache is consulted:

    {ul
    {- a doomed round trip suppresses cache hits for its requests, so its
       rows demote to uncertified maybe results exactly as they would in a
       cold run — a cached verdict can never resurrect a row that fault
       demotion made uncertified;}
    {- a surviving round trip may serve any of its verdicts from cache,
       which changes {e only} simulated time, never the verdict (a verdict
       is a pure function of the assistant object and the relative
       predicate).}}

    Answers are therefore structurally independent of cache capacity and
    admission window — the cache-soundness property the test suite checks
    over random workloads and random fault schedules. Site crashes
    invalidate: each cache entry is tagged with its site's {e generation}
    (the number of outage windows ended by the inserting query's arrival),
    and a later generation discards the entry — a crash wipes the site's
    cache RAM.

    {2 Overload control}

    Three optional knobs make the engine overload-robust, all charged to
    the same simulated clock:

    {ul
    {- {e deadline budgets} — [config.deadline] (or a per-job override)
       bounds each query's latency. A check round trip predicted to land
       past the budget is {e abandoned at admission}: its rows demote to
       uncertified maybes carrying an {!Msdq_query.Answer.Deadline} reason
       (elapsed vs budget), while everything already certain is returned
       as-is — an {e anytime} answer. Deadline fates, like loss fates, are
       drawn before any cache is consulted, so warm and cold runs demote
       identically;}
    {- {e bounded-queue admission} — [config.queue_limit] caps the depth
       of a virtual single-server FIFO over predicted service times.
       Over-capacity arrivals are shed per [config.shed_policy]: rejected
       outright ([Reject_newest]), admitted by evicting the oldest
       still-queued query ([Reject_oldest]), or admitted degraded to the
       cheapest predicted plan ([Degrade]). Shed queries never touch the
       engine and surface as {!shed_report}s;}
    {- {e backpressure} — queue depth plus a deadline-miss EWMA feed
       {!Msdq_opt.Optimizer.decide}'s [overload] score in {!run_auto}, so
       AUTO shifts toward cheaper plans as pressure rises.}}

    Modelling simplifications, documented in docs/SERVE.md: loss fates are
    drawn at the query's arrival instant rather than each transfer's start;
    critical messages (result and extent shipments, batch flushes) wait out
    destination outages instead of failing; retransmission waits of check
    legs are charged as pure latency; deadline fates are likewise drawn at
    admission from the queueing delay and the cost model's predicted
    response (plus any retry waits already fated), not from realized
    execution time — the budget expiry itself is still charged on the
    simulated clock; and the queue is a virtual single-server FIFO that
    charges each query its predicted {e total} work (a single server has
    no idle parallelism, and over-estimating service sheds early — the
    safe direction for a tail bound), not the engine's own resource
    contention. *)

open Msdq_simkit
open Msdq_fed
open Msdq_query
open Msdq_exec

type shed_policy =
  | Reject_newest  (** shed the over-capacity arrival itself *)
  | Reject_oldest
      (** evict the oldest still-queued query to admit the arrival (sheds
          the arrival when nothing is left queued) *)
  | Degrade
      (** admit everything, but force over-capacity arrivals onto the
          cheapest predicted plan (CA/BL/PL under the cost model) *)

val shed_policies : shed_policy list
(** All policies, in the order above. *)

val shed_policy_to_string : shed_policy -> string
(** ["reject-newest"], ["reject-oldest"], ["degrade"]. *)

val shed_policy_of_string : string -> (shed_policy, string) result
(** Inverse of {!shed_policy_to_string}; the error message lists the
    accepted set. *)

type config = {
  options : Strategy.options;
      (** cost constants, site speeds, fault schedule and retry policy —
          the same record the single-query strategies take.
          [options.deep_certify] is unsupported here and rejected. *)
  cache_bytes : int;
      (** capacity of {e each} site's extent cache and of the global
          verdict cache, in bytes; [0] disables caching entirely (every
          run is a cold run) *)
  window : Time.t;
      (** check-batching admission window: requests reaching the same
          target site within [window] of the first coalesce into one
          message; [Time.zero] disables cross-query batching *)
  msg_header_bytes : int;
      (** per-message framing constant amortized by batching; charged on
          every serve-path message, on top of the Table 1 byte costs *)
  deadline : Time.t option;
      (** per-query latency budget; checks predicted to land past it are
          abandoned at admission and their rows demoted with a
          [Answer.Deadline] reason. [None] (the default) disables
          deadlines. Must be positive and finite when set. *)
  queue_limit : int option;
      (** admission-queue depth bound; arrivals finding [queue_limit]
          queries still queued are shed per [shed_policy]. [None] (the
          default) leaves the queue unbounded. Must be [>= 1] when set. *)
  shed_policy : shed_policy;
      (** what to do with an over-capacity arrival; only consulted when
          [queue_limit] is set. Default [Reject_newest]. *)
}

val default_config : config
(** [Strategy.default_options], 4 MiB caches, no batching window, 64-byte
    message header, no deadline, unbounded queue, [Reject_newest]. *)

type job = {
  strategy : Strategy.t;
  analysis : Analysis.t;
  arrival : Time.t;  (** admission instant on the shared simulated clock *)
  deadline : Time.t option;
      (** per-job deadline override; [None] inherits [config.deadline] *)
}

type query_report = {
  index : int;  (** position in the submitted job list *)
  strategy : Strategy.t;
  arrival : Time.t;
  completed : Time.t;  (** when the answer was assembled *)
  latency : Time.t;  (** [completed - arrival] *)
  answer : Answer.t;
      (** carries degraded provenance for fault demotions and cached
          provenance ([Answer.cached]) for cache-served certifications *)
  extent_hits : int;  (** extent-cache hits this query scored *)
  verdict_hits : int;  (** verdicts this query served from cache *)
  deadline_demoted : int;
      (** rows demoted to uncertified maybe because their check round
          trips were abandoned at the deadline (each carries an
          [Answer.Deadline] reason with elapsed vs budget) *)
  registry : Msdq_obs.Metrics.t;
      (** the query's private registry: [msdq_disk_bytes_total],
          [msdq_bytes_shipped_total], [msdq_work_units_total], labelled by
          strategy and paper phase *)
}

type shed_report = {
  s_index : int;  (** position in the submitted job list *)
  s_strategy : Strategy.t;  (** what would have run *)
  s_arrival : Time.t;
  s_policy : shed_policy;  (** the policy that shed it *)
}
(** A query the admission queue refused: it never touched the engine, has
    no {!query_report}, and its absence is an explicit outcome rather than
    an unbounded wait. *)

type outcome = {
  reports : query_report list;
      (** admitted queries, in submission order *)
  shed : shed_report list;
      (** shed queries, in submission order; empty without [queue_limit] *)
  makespan : Time.t;  (** completion instant of the last query *)
  throughput : float;  (** queries per simulated second, [n / makespan] *)
  extent_cache : Lru.stats;  (** aggregated over all per-site caches *)
  verdict_cache : Lru.stats;
  messages : int;  (** serve-path messages actually sent *)
  coalesced_checks : int;
      (** check requests that rode a message also carrying another query's
          requests — what the admission window bought *)
  max_queue_depth : int;
      (** deepest the virtual admission queue got at any arrival instant;
          [0] when no overload knob is configured or queries never
          overlapped *)
  check_latency : (int * float * int) list;
      (** per destination site, sorted by site: [(site, mean_us, legs)] —
          the mean modeled latency of the delivered check legs sent to that
          site (link inflation and jitter included, retry waits excluded)
          and how many legs were observed. This is the run's gray-health
          signal: {!Msdq_exp.Run_report.record_serve_stats} records it into
          the telemetry store, from which [options.latency_of] feeds the
          next run's adaptive timeouts. Empty for purely centralized
          workloads (no check legs). *)
  registry : Msdq_obs.Metrics.t;
      (** the workload registry: [msdq_cache_hits_total] /
          [msdq_cache_misses_total] / [msdq_cache_evictions_total]
          (labelled [cache=extent|verdict]),
          [msdq_coalesced_checks_total], [msdq_messages_total] and the
          fault counters. With [options.telemetry] set it additionally
          holds the [msdq_task_duration_us] and [msdq_query_latency_us]
          latency histograms. *)
  trace : Trace.entry list;
      (** the engine's task trace, for Chrome export and critical-path
          analysis. Every serve-path task carries a
          [("trace", "q<index>")] attribute naming the owning query (a
          coalesced message shared by several queries carries
          [("trace", "batch")]), so per-query causal trees can be
          recovered from the shared engine's trace. Empty unless {!run}
          was called with [~trace:true] or [options.telemetry] is set. *)
}

val run :
  ?tracer:Msdq_obs.Tracer.t ->
  ?registry:Msdq_obs.Metrics.t ->
  ?trace:bool ->
  config ->
  Federation.t ->
  job list ->
  outcome
(** Executes the whole workload on one shared engine. Jobs must be listed
    in non-decreasing arrival order — cache admission follows list order —
    and may mix strategies ([Ca], [Bl], [Pl], [Bls], [Pls], [Lo]; [Cf] has
    no serve-path integration and is rejected). [~trace:true] enables the
    engine's task trace (also enabled implicitly by [options.telemetry]);
    it changes only the [trace] field of the outcome, never timing or
    answers. Raises [Invalid_argument] on invalid configuration (negative
    capacities, negative or non-finite window, [deep_certify], unsorted
    arrivals, a [Cf] job, a non-positive or non-finite deadline, a
    [queue_limit < 1]) with a readable message, before any simulated work
    happens.

    With overload knobs set, the workload registry additionally carries
    [msdq_shed_total{policy}], [msdq_deadline_demotions_total{strategy}]
    and the [msdq_queue_depth] gauge (the outcome's [max_queue_depth]). *)

(** {2 AUTO: adaptive per-query strategy selection}

    {!run_auto} lets the cost-based optimizer ({!Msdq_opt.Optimizer}) pick
    each query's strategy at admission: model predictions from the
    federation's catalog statistics, blended with observed latencies from
    a telemetry store, choose among CA, BL and PL. A per-destination-link
    circuit breaker ({!Msdq_exec.Recovery.Breaker}) is fed by every
    admitted query's check-request leg fates; while a link's breaker is
    open, later queries whose checks could target it are re-planned onto
    CA (whose critical transfers wait out outages instead of dropping).

    Selection never changes semantics: each query's answer is
    byte-identical ({!answer_fingerprint}) to the answer a fixed-strategy
    run of the chosen strategy produces — the optimizer only decides {e
    which} prepared plan executes. *)

type auto_decision = {
  d_index : int;  (** position in the submitted job list *)
  d_arrival : Time.t;
  d_preferred : Strategy.t;
      (** the optimizer's unconstrained pick for this query *)
  d_chosen : Strategy.t;
      (** what actually ran, after breaker fallback and (under the
          [Degrade] shed policy) over-capacity degradation *)
  d_switched : bool;
      (** a breaker or overload forced [d_chosen <> d_preferred] *)
  d_reason : string option;  (** why, when it switched *)
}

type auto_outcome = {
  auto : outcome;  (** the workload outcome, as {!run} would report it *)
  decisions : auto_decision list;  (** in submission order *)
  switches : int;  (** decisions the breaker re-planned *)
}

val run_auto :
  ?tracer:Msdq_obs.Tracer.t ->
  ?registry:Msdq_obs.Metrics.t ->
  ?trace:bool ->
  ?store:Msdq_telemetry.Store.t ->
  ?objective:Msdq_opt.Planner.objective ->
  config ->
  Federation.t ->
  (Analysis.t * Time.t) list ->
  auto_outcome
(** Like {!run}, but each job is just (analyzed query, arrival) and the
    strategy is chosen per query at admission. [store] supplies observed
    per-strategy latencies (see {!Msdq_telemetry.Store.strategy_latency});
    without it selection is purely model-driven. [objective] defaults to
    response time. The workload registry additionally carries
    [msdq_auto_decisions_total{strategy}] and (when any decision switched)
    [msdq_auto_switches_total]. Validation rules are {!run}'s. Overload
    control composes: queue depth plus the deadline-miss EWMA feed
    {!Msdq_opt.Optimizer.decide}'s [overload] backpressure score, shed
    arrivals produce no decision, and under the [Degrade] policy an
    over-capacity arrival is forced onto its cheapest predicted candidate
    (recorded as a switched decision). *)

val answer_fingerprint : Answer.t -> string
(** Canonical bytes of an answer's {e result content}: every row's GOid,
    status and projected values, plus the degraded set and its reasons.
    Cache provenance is deliberately excluded — it is metadata about {e
    how} a row was certified, not {e what} was answered — so the
    cache-soundness property "warm and cold runs answer identically" is
    exactly [answer_fingerprint] equality. *)

val throughput : outcome -> float
(** [outcome.throughput], for symmetry with the sweep tables. *)
