(* Classic doubly-linked-list-over-hashtable LRU, with two twists the
   workload engine needs: capacity is measured in payload bytes (cost-model
   sizes, not entry counts), and every entry carries the generation current
   at insertion so a site crash invalidates lazily — stale entries are
   discarded on first touch instead of eagerly sweeping the table. *)

type 'a node = {
  key : string;
  value : 'a;
  bytes : int;
  gen : int;
  mutable prev : 'a node option; (* towards most-recently-used *)
  mutable next : 'a node option; (* towards least-recently-used *)
}

type 'a t = {
  capacity : int;
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option; (* most-recently-used *)
  mutable tail : 'a node option; (* least-recently-used *)
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  entries : int;
  bytes : int;
}

let create ~capacity_bytes =
  {
    capacity = capacity_bytes;
    table = Hashtbl.create 64;
    head = None;
    tail = None;
    bytes = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
  }

let capacity_bytes t = t.capacity

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let remove t node =
  unlink t node;
  Hashtbl.remove t.table node.key;
  t.bytes <- t.bytes - node.bytes

(* Returns the live node for [key] under generation [gen], dropping (and
   counting) a stale one. Shared by [find] and [mem]. *)
let live_node t ~gen key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some node when node.gen < gen ->
      remove t node;
      t.invalidations <- t.invalidations + 1;
      None
  | Some node -> Some node

let find t ~gen key =
  match live_node t ~gen key with
  | Some node ->
      unlink t node;
      push_front t node;
      t.hits <- t.hits + 1;
      Some node.value
  | None ->
      t.misses <- t.misses + 1;
      None

let mem t ~gen key = Option.is_some (live_node t ~gen key)

let add t ~gen ~key ~bytes value =
  if bytes < 0 then invalid_arg "Lru.add: negative size";
  (match Hashtbl.find_opt t.table key with
  | Some node -> remove t node
  | None -> ());
  if bytes <= t.capacity then begin
    let node = { key; value; bytes; gen; prev = None; next = None } in
    while t.bytes + bytes > t.capacity do
      match t.tail with
      | Some lru ->
          remove t lru;
          t.evictions <- t.evictions + 1
      | None -> assert false (* bytes <= capacity, so the loop terminates *)
    done;
    Hashtbl.add t.table key node;
    push_front t node;
    t.bytes <- t.bytes + bytes
  end

let stats (t : 'a t) =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    invalidations = t.invalidations;
    entries = Hashtbl.length t.table;
    bytes = t.bytes;
  }
