(** Byte-capacity LRU cache with generation-based invalidation.

    The workload engine ([Serve]) keeps one of these per cached artifact
    family: localized extent projections at each component site and
    assistant-check verdicts at the global site. Entries are keyed by
    string, sized in bytes, and tagged with the {e generation} current when
    they were inserted. A lookup supplies the caller's current generation;
    an entry whose generation is older was inserted before a site crash
    wiped the cache, so it is discarded and the lookup misses — this is the
    invalidation rule of docs/SERVE.md.

    Accounting is explicit so [Serve] can export
    [msdq_cache_hits_total] / [msdq_cache_misses_total] /
    [msdq_cache_evictions_total]: every {!find} is either one hit or one
    miss, every capacity eviction and every generation invalidation is
    counted. All operations are O(1) amortized. *)

type 'a t

val create : capacity_bytes:int -> 'a t
(** A fresh cache holding at most [capacity_bytes] of entry payload.
    [capacity_bytes <= 0] creates a cache on which every {!find} misses and
    every {!add} is a no-op (caching disabled). *)

val capacity_bytes : 'a t -> int

val find : 'a t -> gen:int -> string -> 'a option
(** [find t ~gen key] returns the cached value and promotes the entry to
    most-recently-used. An entry stored under an older generation than
    [gen] is removed, counted as an invalidation, and the lookup misses. *)

val add : 'a t -> gen:int -> key:string -> bytes:int -> 'a -> unit
(** Inserts (or replaces) the entry and evicts least-recently-used entries
    until the payload fits. A value larger than the whole capacity is not
    stored. Raises [Invalid_argument] on negative [bytes]. *)

val mem : 'a t -> gen:int -> string -> bool
(** Like {!find} but without promoting the entry or touching the hit/miss
    counters; stale entries still count as invalidated and are dropped. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;  (** entries pushed out by capacity pressure *)
  invalidations : int;  (** entries dropped by a generation mismatch *)
  entries : int;  (** current population *)
  bytes : int;  (** current payload total *)
}

val stats : 'a t -> stats
