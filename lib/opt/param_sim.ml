open Msdq_simkit
open Msdq_workload
open Msdq_exec

type times = { total : Time.t; response : Time.t }

type overrides = { root_local_selectivity : float option }

let no_overrides = { root_local_selectivity = None }

(* Expected-cardinality model.

   For one parameter sample, the per-phase work is estimated as:
   - shipped/read projection of class k at db i:
       N_o * (S_LOid + N_qa * S_a)                                [Table 2]
   - survivors of the local predicates at db i:
       S_i = N_o(root) * prod_k R_pps^k_i                         [R_pps]
   - maybe ratio: an object is a maybe result when any involved class holds
     missing data for it: 1 - prod_k (1 - R_m^k_i)                [R_m]
   - unsolved items of class k (BL): maybe results times the class's
     missing-data ratio, capped by the number of distinct referenced branch
     objects R_r * N_o^k * R_m (shared advisors are checked once)  [R_r]
   - (PL probes all root objects instead of the survivors)
   - assistant fan-out: R_iso = 1 - 0.9^(N_db-1) means each other database
     independently holds an isomer with probability q = 1-(1-R_iso)^(1/(N_db-1))
     (q = 0.1 under the default formula), so an item has q assistants in
     each other database — their count grows with N_db, which is what makes
     PL's total time overtake CA's in Figure 10. An assistant's database
     can only serve a check if its constituent holds the attribute
     (factor N_pa^j / N_p)                                          [R_iso]
   - a check fetches its assistant by LOid: a random access reading at
     least one S_page disk page, unlike the sequential extent scans
   - signature variants ship only the fraction R_ss of requests    [R_ss]
   - path work: a predicate landing on class k walks k+1 attribute
     accesses plus one comparison. *)

let fi = float_of_int

let simulate ?(overrides = no_overrides) ~cost strategy (s : Params.sample) =
  let c = cost in
  let n_db = s.Params.n_db in
  let n_c = Array.length s.Params.classes in
  let cls k = s.Params.classes.(k) in
  let at k i = (cls k).Params.per_db.(i) in
  let r_pps k i =
    match (k, overrides.root_local_selectivity) with
    | 0, Some sel when (at k i).Params.n_pa > 0 -> sel
    | _ -> (at k i).Params.r_pps
  in
  let bytes_f b = Time.us (c.Cost.t_d *. b) in
  let net_f b = Time.us (c.Cost.t_net *. b) in
  let cpu_f u = Time.us (c.Cost.t_c *. Float.max 0.0 u) in
  (* CA ships (and reads) whole extents; a localized evaluation reads the
     root extent plus only the referenced fraction R_r of each branch
     extent. *)
  let read_bytes ~localized i =
    let b = ref 0.0 in
    for k = 0 to n_c - 1 do
      let cd = at k i in
      let frac = if localized && k > 0 then (cls k).Params.r_r else 1.0 in
      b :=
        !b
        +. (fi cd.Params.n_o *. frac
           *. fi (c.Cost.s_loid + (cd.Params.n_qa * c.Cost.s_a)))
    done;
    !b
  in
  let e = Engine.create () in
  let gsite = 0 in
  let site i = i + 1 in
  (match strategy with
  | Strategy.Ca ->
    let xfers =
      List.init n_db (fun i ->
          let b = read_bytes ~localized:false i in
          let read =
            Engine.task e ~site:(site i) ~kind:Resource.Disk ~label:"read"
              ~duration:(bytes_f b) ()
          in
          Engine.transfer e ~src:(site i) ~dst:gsite ~label:"ship"
            ~duration:(net_f b) ~deps:[ read ] ())
    in
    let integrate_units = ref 0.0 in
    let entities_root = ref 0.0 in
    for k = 0 to n_c - 1 do
      let o_k = ref 0.0 and merges = ref 0.0 in
      for i = 0 to n_db - 1 do
        let cd = at k i in
        o_k := !o_k +. fi cd.Params.n_o;
        merges := !merges +. (fi cd.Params.n_o *. fi cd.Params.n_qa)
      done;
      (* one hash probe and roughly one reference translation per object *)
      integrate_units := !integrate_units +. (2.0 *. !o_k) +. !merges;
      if k = 0 then begin
        let r_iso = (cls 0).Params.r_iso in
        let q =
          if n_db <= 1 then 0.0
          else 1.0 -. ((1.0 -. r_iso) ** (1.0 /. fi (n_db - 1)))
        in
        entities_root := !o_k /. (1.0 +. (q *. fi (n_db - 1)))
      end
    done;
    let eval_units = ref 0.0 in
    for k = 0 to n_c - 1 do
      eval_units :=
        !eval_units +. (!entities_root *. fi (cls k).Params.n_p *. fi (k + 2))
    done;
    let integrate =
      Engine.task e ~site:gsite ~kind:Resource.Cpu ~label:"integrate"
        ~duration:(cpu_f !integrate_units) ~deps:xfers ()
    in
    ignore
      (Engine.task e ~site:gsite ~kind:Resource.Cpu ~label:"eval"
         ~duration:(cpu_f !eval_units) ~deps:[ integrate ] ())
  | Strategy.Cf ->
    (* Semijoin-filtered centralized: round 1 ships surviving GOid lists;
       round 2 ships only the candidates' root projections plus the branch
       extents. An entity survives globally when all its copies (q per
       other database) pass their local filters. *)
    let gsite = 0 in
    let sel i =
      let s = ref 1.0 in
      for k = 0 to n_c - 1 do
        s := !s *. r_pps k i
      done;
      !s
    in
    let mean_sel =
      let acc = ref 0.0 in
      for i = 0 to n_db - 1 do
        acc := !acc +. sel i
      done;
      !acc /. fi n_db
    in
    let q =
      if n_db <= 1 then 0.0
      else 1.0 -. ((1.0 -. (cls 0).Params.r_iso) ** (1.0 /. fi (n_db - 1)))
    in
    let other_copies = q *. fi (n_db - 1) in
    let survive_global = mean_sel ** other_copies in
    let ships = ref [] in
    let cand_total = ref 0.0 in
    let round1 =
      List.init n_db (fun i ->
          let root = at 0 i in
          let survivors = fi root.Params.n_o *. sel i in
          let candidates = survivors *. survive_global in
          cand_total := !cand_total +. candidates;
          let eval_units = ref survivors in
          for k = 0 to n_c - 1 do
            let cd = at k i in
            eval_units :=
              !eval_units
              +. (fi root.Params.n_o *. fi cd.Params.n_pa *. fi (k + 2))
              +. fi root.Params.n_o
                 *. fi ((cls k).Params.n_p - cd.Params.n_pa)
                 *. fi (k + 1)
          done;
          let read =
            Engine.task e ~site:(site i) ~kind:Resource.Disk ~label:"read"
              ~duration:(bytes_f (read_bytes ~localized:true i)) ()
          in
          let filt =
            Engine.task e ~site:(site i) ~kind:Resource.Cpu ~label:"local-filter"
              ~duration:(cpu_f !eval_units) ~deps:[ read ] ()
          in
          let ship =
            Engine.transfer e ~src:(site i) ~dst:gsite ~label:"ship-goids"
              ~duration:(net_f (survivors *. fi c.Cost.s_goid)) ~deps:[ filt ] ()
          in
          ships := ship :: !ships;
          (i, candidates))
    in
    let entities = 1.0 +. other_copies in
    let global_candidates = !cand_total /. entities in
    let intersect =
      Engine.task e ~site:gsite ~kind:Resource.Cpu ~label:"intersect"
        ~duration:(cpu_f !cand_total) ~deps:(List.rev !ships) ()
    in
    let xfers =
      List.map
        (fun (i, candidates) ->
          let bcast =
            Engine.transfer e ~src:gsite ~dst:(site i) ~label:"ship-candidates"
              ~duration:(net_f (global_candidates *. fi c.Cost.s_goid))
              ~deps:[ intersect ] ()
          in
          let root = at 0 i in
          let b = ref (candidates *. fi (c.Cost.s_loid + (root.Params.n_qa * c.Cost.s_a))) in
          for k = 1 to n_c - 1 do
            let cd = at k i in
            (* only the branch objects the candidates reach *)
            let shipped =
              Float.min (fi cd.Params.n_o *. (cls k).Params.r_r) candidates
            in
            b := !b +. (shipped *. fi (c.Cost.s_loid + (cd.Params.n_qa * c.Cost.s_a)))
          done;
          let read =
            Engine.task e ~site:(site i) ~kind:Resource.Disk
              ~label:"read-candidates" ~duration:(bytes_f !b) ~deps:[ bcast ] ()
          in
          Engine.transfer e ~src:(site i) ~dst:gsite ~label:"ship" ~duration:(net_f !b)
            ~deps:[ read ] ())
        round1
    in
    (* Integration over candidates + branch extents; evaluation over the
       surviving candidates only. *)
    let integrate_units = ref (2.0 *. global_candidates) in
    for k = 1 to n_c - 1 do
      for i = 0 to n_db - 1 do
        let cd = at k i in
        integrate_units :=
          !integrate_units +. (fi cd.Params.n_o *. fi (2 + cd.Params.n_qa))
      done
    done;
    let eval_units = ref 0.0 in
    for k = 0 to n_c - 1 do
      eval_units :=
        !eval_units +. (global_candidates *. fi (cls k).Params.n_p *. fi (k + 2))
    done;
    let integrate =
      Engine.task e ~site:gsite ~kind:Resource.Cpu ~label:"integrate"
        ~duration:(cpu_f !integrate_units) ~deps:xfers ()
    in
    ignore
      (Engine.task e ~site:gsite ~kind:Resource.Cpu ~label:"eval"
         ~duration:(cpu_f !eval_units) ~deps:[ integrate ] ())
  | Strategy.Bl | Strategy.Pl | Strategy.Bls | Strategy.Pls | Strategy.Lo ->
    let parallel =
      match strategy with
      | Strategy.Pl | Strategy.Pls -> true
      | Strategy.Bl | Strategy.Bls | Strategy.Lo -> false
      | Strategy.Ca | Strategy.Cf -> assert false
    in
    let signatures =
      match strategy with
      | Strategy.Bls | Strategy.Pls -> true
      | Strategy.Bl | Strategy.Pl | Strategy.Lo -> false
      | Strategy.Ca | Strategy.Cf -> assert false
    in
    let with_checks = strategy <> Strategy.Lo in
    let global_deps = ref [] in
    (* Per-origin dispatch tasks and per (origin,target) request volumes. *)
    let dispatch = Array.make n_db None in
    let req_vol = Array.make_matrix n_db n_db 0.0 in
    for i = 0 to n_db - 1 do
      let root = at 0 i in
      let sel = ref 1.0 and p_no_missing = ref 1.0 in
      for k = 0 to n_c - 1 do
        sel := !sel *. r_pps k i;
        p_no_missing := !p_no_missing *. (1.0 -. (at k i).Params.r_m)
      done;
      let survivors = fi root.Params.n_o *. !sel in
      let maybe = survivors *. (1.0 -. !p_no_missing) in
      (* Unsolved (item, predicate) pairs per branch class, for BL
         (survivors only) or PL (all root objects). Distinct items are
         bounded by the referenced fraction of the branch extent; each item
         carries one check per unsolved predicate: all the class-missing
         predicates plus the nulled share of the locally present ones. *)
      let base = if parallel then fi root.Params.n_o else maybe in
      let items = Array.make n_c 0.0 in
      for k = 1 to n_c - 1 do
        let cd = at k i in
        let missing = (cls k).Params.n_p - cd.Params.n_pa in
        let null_rate = if missing > 0 then 0.1 else cd.Params.r_m in
        let unsolved_per_item =
          fi missing +. (null_rate *. fi cd.Params.n_pa)
        in
        let distinct = fi cd.Params.n_o *. (cls k).Params.r_r in
        items.(k) <-
          Float.min (base *. cd.Params.r_m) (distinct *. cd.Params.r_m)
          *. unsolved_per_item
      done;
      let total_items = Array.fold_left ( +. ) 0.0 items in
      (* Assistant fan-out to each other database. *)
      let sig_checks = ref 0.0 in
      for j = 0 to n_db - 1 do
        if j <> i then begin
          let vol = ref 0.0 in
          for k = 1 to n_c - 1 do
            let gc = cls k in
            let capable =
              if gc.Params.n_p = 0 then 1.0
              else fi (at k j).Params.n_pa /. fi gc.Params.n_p
            in
            let q =
              if n_db <= 1 then 0.0
              else 1.0 -. ((1.0 -. gc.Params.r_iso) ** (1.0 /. fi (n_db - 1)))
            in
            let base_req = items.(k) *. q *. capable in
            sig_checks := !sig_checks +. base_req;
            let shipped =
              if signatures then base_req *. (at k j).Params.r_ss else base_req
            in
            vol := !vol +. shipped
          done;
          req_vol.(i).(j) <- (if with_checks then !vol else 0.0)
        end
      done;
      (* Work units. *)
      let eval_units = ref (survivors (* row tagging *)) in
      let probe_units = ref 0.0 in
      for k = 0 to n_c - 1 do
        let cd = at k i in
        let local = fi root.Params.n_o *. fi cd.Params.n_pa *. fi (k + 2) in
        let cut =
          fi root.Params.n_o *. fi ((cls k).Params.n_p - cd.Params.n_pa) *. fi (k + 1)
        in
        eval_units := !eval_units +. local +. cut;
        probe_units :=
          !probe_units +. (fi root.Params.n_o *. fi (cls k).Params.n_p *. fi (k + 1))
      done;
      let dispatch_units =
        if not with_checks then 0.0
        else total_items +. (if signatures then !sig_checks else 0.0)
      in
      let read =
        Engine.task e ~site:(site i) ~kind:Resource.Disk ~label:"read"
          ~duration:(bytes_f (read_bytes ~localized:true i)) ()
      in
      let disp =
        if parallel then begin
          let probe =
            Engine.task e ~site:(site i) ~kind:Resource.Cpu ~label:"probe"
              ~duration:(cpu_f !probe_units) ~deps:[ read ] ()
          in
          let d =
            Engine.task e ~site:(site i) ~kind:Resource.Cpu ~label:"dispatch"
              ~duration:(cpu_f dispatch_units) ~deps:[ probe ] ()
          in
          let eval =
            Engine.task e ~site:(site i) ~kind:Resource.Cpu ~label:"eval"
              ~duration:(cpu_f !eval_units) ~deps:[ d ] ()
          in
          ignore eval;
          (d, eval)
        end
        else begin
          let eval =
            Engine.task e ~site:(site i) ~kind:Resource.Cpu ~label:"eval"
              ~duration:(cpu_f !eval_units) ~deps:[ read ] ()
          in
          let d =
            Engine.task e ~site:(site i) ~kind:Resource.Cpu ~label:"dispatch"
              ~duration:(cpu_f dispatch_units) ~deps:[ eval ] ()
          in
          (d, d)
        end
      in
      dispatch.(i) <- Some disp;
      (* Local results to the global site. *)
      let n_ta_total = ref 0 and unsolved_avg = ref 0.0 in
      for k = 0 to n_c - 1 do
        n_ta_total := !n_ta_total + (at k i).Params.n_ta;
        unsolved_avg := !unsolved_avg +. (at k i).Params.r_m
      done;
      let results_bytes =
        survivors
        *. fi (c.Cost.s_goid + c.Cost.s_loid + (!n_ta_total * c.Cost.s_a))
        +. (maybe *. !unsolved_avg *. fi (c.Cost.s_loid + c.Cost.s_a))
      in
      let _, after = disp in
      let ship =
        Engine.transfer e ~src:(site i) ~dst:gsite ~label:"ship-results"
          ~duration:(net_f results_bytes) ~deps:[ after ] ()
      in
      global_deps := ship :: !global_deps
    done;
    (* Check round trips per (origin, target). *)
    let total_verdicts = ref 0.0 in
    for i = 0 to n_db - 1 do
      for j = 0 to n_db - 1 do
        if i <> j && req_vol.(i).(j) > 0.0 then begin
          let n = req_vol.(i).(j) in
          total_verdicts := !total_verdicts +. n;
          let d =
            match dispatch.(i) with Some (d, _) -> d | None -> assert false
          in
          let req_xfer =
            Engine.transfer e ~src:(site i) ~dst:(site j) ~label:"ship-requests"
              ~duration:(net_f (n *. fi ((2 * c.Cost.s_loid) + (2 * c.Cost.s_a))))
              ~deps:[ d ] ()
          in
          let read =
            Engine.task e ~site:(site j) ~kind:Resource.Disk ~label:"check-read"
              ~duration:
                (bytes_f
                   (n *. fi (max c.Cost.s_page (c.Cost.s_loid + (2 * c.Cost.s_a)))))
              ~deps:[ req_xfer ] ()
          in
          let eval =
            Engine.task e ~site:(site j) ~kind:Resource.Cpu ~label:"check-eval"
              ~duration:(cpu_f (n *. 2.0)) ~deps:[ read ] ()
          in
          let verdicts =
            Engine.transfer e ~src:(site j) ~dst:gsite ~label:"ship-verdicts"
              ~duration:(net_f (n *. fi (c.Cost.s_loid + 2)))
              ~deps:[ eval ] ()
          in
          global_deps := verdicts :: !global_deps
        end
      done
    done;
    (* Certification. *)
    let certify_units = ref !total_verdicts in
    for i = 0 to n_db - 1 do
      let root = at 0 i in
      let sel = ref 1.0 in
      for k = 0 to n_c - 1 do
        sel := !sel *. r_pps k i
      done;
      let survivors = fi root.Params.n_o *. !sel in
      let n_p_total = ref 0 in
      for k = 0 to n_c - 1 do
        n_p_total := !n_p_total + (cls k).Params.n_p
      done;
      certify_units := !certify_units +. (survivors *. fi (1 + !n_p_total))
    done;
    ignore
      (Engine.task e ~site:gsite ~kind:Resource.Cpu ~label:"certify"
         ~duration:(cpu_f !certify_units) ~deps:(List.rev !global_deps) ()));
  Engine.run e;
  let st = Engine.stats e in
  { total = Stats.total_busy st; response = Stats.makespan st }

(* Sample [i] draws from [Rng.split_ix base ~i] — a private stream per index
   rather than one shared sequential stream. Two consequences:

   - parallel and sequential evaluation are bit-identical: the draw for
     sample [i] cannot depend on which domain ran sample [i-1], or whether
     it ran at all yet;
   - the paired-comparison property strengthens: sample [i] sees the same
     stream for every strategy and every sweep point, even when the ranges
     differ in how many values one draw consumes. *)
let average ?overrides ?pool ~cost ~samples ~seed ~ranges strategy =
  let base = Rng.create ~seed in
  let one rng _i () =
    let s = Params.sample rng ranges in
    let t = simulate ?overrides ~cost strategy s in
    (Time.to_us t.total, Time.to_us t.response)
  in
  let times =
    match pool with
    | Some pool when Msdq_par.Pool.jobs pool > 1 ->
      Msdq_par.Par.tabulate_seeded pool ~rng:base ~n:samples ~f:(fun rng i ->
          one rng i ())
    | Some _ | None ->
      Array.init samples (fun i -> one (Rng.split_ix base ~i) i ())
  in
  (* Reduce in index order: float addition is not associative, so the merge
     order is part of the determinism contract. *)
  let sum_total = ref 0.0 and sum_resp = ref 0.0 in
  Array.iter
    (fun (t, r) ->
      sum_total := !sum_total +. t;
      sum_resp := !sum_resp +. r)
    times;
  {
    total = Time.us (!sum_total /. fi samples);
    response = Time.us (!sum_resp /. fi samples);
  }
