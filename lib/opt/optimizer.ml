open Msdq_simkit
open Msdq_fed
open Msdq_query
open Msdq_exec
module Store = Msdq_telemetry.Store

let candidates = [ Strategy.Ca; Strategy.Bl; Strategy.Pl ]

type score = {
  strategy : Strategy.t;
  predicted_us : float;
  pred_ratio : float;
  observed : (float * float) option;
  blended : float;
}

type decision = {
  preferred : Strategy.t;
  chosen : Strategy.t;
  switched : bool;
  scores : score list;
  predictions : Planner.prediction list;
  reason : string option;
}

(* How many query observations it takes for the store's evidence to weigh
   as much as the model: beta = w / (w + prior). *)
let observation_prior = 4.0

let check_sites fed (analysis : Analysis.t) =
  let gs = Federation.global_schema fed in
  List.filter_map
    (fun (db_name, _db) ->
      if
        List.exists
          (fun gcls ->
            Global_schema.constituent_of gs ~gcls ~db:db_name <> None)
          analysis.Analysis.classes_involved
      then Some (Federation.site_of fed db_name)
      else None)
    (Federation.databases fed)

let localized = function
  | Strategy.Bl | Strategy.Pl | Strategy.Bls | Strategy.Pls | Strategy.Lo ->
    true
  | Strategy.Ca | Strategy.Cf -> false

let argmin scores =
  match scores with
  | [] -> invalid_arg "Optimizer: no candidate strategies"
  | first :: rest ->
    (* strict [<]: ties resolve to the earliest candidate (CA first) *)
    List.fold_left
      (fun best s -> if s.blended < best.blended then s else best)
      first rest

let decide ?cost ?store ?(objective = Planner.Response_time) ?(degraded = [])
    ?(gray = []) ?(overload = 0.0) fed analysis =
  if not (Float.is_finite overload) || overload < 0.0 then
    invalid_arg "Optimizer.decide: overload must be non-negative and finite";
  let predictions =
    Planner.predict ?cost ~strategies:candidates fed analysis
  in
  let key (p : Planner.prediction) =
    match objective with
    | Planner.Total_time -> Time.to_us p.Planner.total
    | Planner.Response_time -> Time.to_us p.Planner.response
  in
  let preds = List.map (fun p -> (p.Planner.strategy, key p)) predictions in
  let mean l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
  let mean_pred = mean (List.map snd preds) in
  let observed_of st =
    match store with
    | None -> None
    | Some s -> Store.strategy_latency s ~strategy:(Strategy.to_string st)
  in
  let observed = List.map (fun (st, _) -> (st, observed_of st)) preds in
  let obs_means = List.filter_map (fun (_, o) -> Option.map fst o) observed in
  let mean_obs = if obs_means = [] then None else Some (mean obs_means) in
  let scores =
    List.map
      (fun (st, pred_us) ->
        let pred_ratio =
          if mean_pred > 0.0 then pred_us /. mean_pred else 1.0
        in
        let obs = List.assoc st observed in
        let blended =
          match (obs, mean_obs) with
          | Some (lat, w), Some m when m > 0.0 && w > 0.0 ->
            let beta = w /. (w +. observation_prior) in
            ((1.0 -. beta) *. pred_ratio) +. (beta *. (lat /. m))
          | _ -> pred_ratio
        in
        (* Backpressure: under overload, expensive plans are penalized in
           proportion to their predicted cost, shifting the argmin toward
           the cheapest candidate as pressure rises. Zero overload leaves
           every score untouched. *)
        let blended = blended +. (overload *. pred_ratio) in
        { strategy = st; predicted_us = pred_us; pred_ratio; observed = obs;
          blended })
      preds
  in
  let preferred = (argmin scores).strategy in
  let targets_among pool =
    if pool = [] || not (localized preferred) then []
    else List.filter (fun s -> List.mem s pool) (check_sites fed analysis)
  in
  let degraded_targets = targets_among degraded in
  let gray_targets =
    (* Breaker-dead sites already force the fallback; the gray signal only
       matters for sites that are nominally alive but slow. *)
    List.filter (fun s -> not (List.mem s degraded_targets))
      (targets_among gray)
  in
  let sites l =
    String.concat "," (List.map string_of_int (List.sort_uniq compare l))
  in
  match (degraded_targets, gray_targets) with
  | [], [] ->
    {
      preferred;
      chosen = preferred;
      switched = false;
      scores;
      predictions;
      reason = None;
    }
  | (_ :: _), _ ->
    {
      preferred;
      chosen = Strategy.Ca;
      switched = true;
      scores;
      predictions;
      reason =
        Some
          (Printf.sprintf "breaker open for site(s) %s: falling back to CA"
             (sites degraded_targets));
    }
  | [], (_ :: _) ->
    {
      preferred;
      chosen = Strategy.Ca;
      switched = true;
      scores;
      predictions;
      reason =
        Some
          (Printf.sprintf
             "check site(s) %s gray (slow but up): falling back to CA"
             (sites gray_targets));
    }

let pp_decision ppf d =
  Format.fprintf ppf "@[<v>AUTO chose %s (model preferred %s)%s@,"
    (Strategy.to_string d.chosen)
    (Strategy.to_string d.preferred)
    (match d.reason with Some r -> " — " ^ r | None -> "");
  List.iter
    (fun s ->
      Format.fprintf ppf "  %-4s predicted %10.0f us  score %.3f%s@,"
        (Strategy.to_string s.strategy)
        s.predicted_us s.blended
        (match s.observed with
        | Some (lat, w) ->
          Printf.sprintf "  (observed %.0f us, weight %.1f)" lat w
        | None -> ""))
    d.scores;
  Format.fprintf ppf "@]"
