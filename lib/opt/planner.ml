open Msdq_odb
open Msdq_simkit
open Msdq_fed
open Msdq_query
open Msdq_exec
open Msdq_workload

type objective = Total_time | Response_time

type prediction = { strategy : Strategy.t; total : Time.t; response : Time.t }

(* Observed selectivity of one predicate, from the federation's data. *)
let pred_selectivity fed (info : Analysis.atom_info) ~gcls =
  let pred = info.Analysis.pred in
  let attr =
    match List.rev pred.Predicate.path with
    | a :: _ -> a
    | [] -> assert false
  in
  Probabilistic.attribute_selectivity fed ~gcls ~attr ~op:pred.Predicate.op
    ~operand:pred.Predicate.operand

(* Fraction of a constituent extent holding null in any of the given
   attributes (per-object missing data beyond schema-level misses). *)
let null_ratio db ~cls ~attrs =
  let total = ref 0 and nulled = ref 0 in
  List.iter
    (fun obj ->
      incr total;
      if
        List.exists
          (fun attr ->
            match Database.field_by_name db obj attr with
            | Some Value.Null -> true
            | Some _ | None -> false)
          attrs
      then incr nulled)
    (Database.extent db cls);
  if !total = 0 then 0.0 else float_of_int !nulled /. float_of_int !total

(* Fraction of root-class entities with more than one copy. *)
let isomerism_ratio fed ~gcls =
  let table = Federation.goids fed in
  let goids = Goid_table.goids_of_class table ~gcls in
  let total = List.length goids in
  if total = 0 then 0.0
  else
    let multi =
      List.length
        (List.filter (fun g -> List.length (Goid_table.locals_of table g) > 1) goids)
    in
    float_of_int multi /. float_of_int total

(* Referenced fraction of a branch class, averaged over root-hosting
   databases (Touch counts the distinct objects actually reachable). *)
let reference_ratios fed analysis =
  let gs = Federation.global_schema fed in
  let root = analysis.Analysis.range_class in
  let per_class : (string, float list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (db_name, db) ->
      match Global_schema.constituent_of gs ~gcls:root ~db:db_name with
      | None -> ()
      | Some _ ->
        List.iter
          (fun (gcls, touched) ->
            if not (String.equal gcls root) then begin
              match Global_schema.constituent_of gs ~gcls ~db:db_name with
              | None -> ()
              | Some local_cls ->
                let size = Database.extent_size db local_cls in
                if size > 0 then begin
                  let ratio = float_of_int touched /. float_of_int size in
                  match Hashtbl.find_opt per_class gcls with
                  | Some l -> l := ratio :: !l
                  | None -> Hashtbl.add per_class gcls (ref [ ratio ])
                end
            end)
          (Touch.count fed analysis ~db:db_name))
    (Federation.databases fed);
  fun gcls ->
    match Hashtbl.find_opt per_class gcls with
    | Some l ->
      let ratios = !l in
      List.fold_left ( +. ) 0.0 ratios /. float_of_int (List.length ratios)
    | None -> 1.0

let profile fed (analysis : Analysis.t) =
  let gs = Federation.global_schema fed in
  let schema = Global_schema.schema gs in
  let involved = Involved.compute schema analysis in
  let databases = Federation.databases fed in
  let n_db = List.length databases in
  let r_r_of = reference_ratios fed analysis in
  let build_class gcls =
    let preds = Analysis.predicates_on_class analysis gcls in
    let infos =
      List.filter
        (fun (info : Analysis.atom_info) ->
          List.memq info.Analysis.pred preds)
        analysis.Analysis.atoms
    in
    let n_p = List.length preds in
    let selectivities = List.map (fun info -> pred_selectivity fed info ~gcls) infos in
    let r_ps = List.fold_left ( *. ) 1.0 selectivities in
    let targets_on_class =
      List.length
        (List.filter
           (fun (path, _) ->
             match Path.resolve schema ~root:analysis.Analysis.range_class path with
             | Path.Full (steps, _) -> (
               match List.rev steps with
               | last :: _ -> String.equal last.Path.on_class gcls
               | [] -> false)
             | Path.Cut _ | Path.Invalid _ -> false)
           analysis.Analysis.targets)
    in
    let per_db =
      Array.of_list
        (List.map
           (fun (db_name, db) ->
             match Global_schema.constituent_of gs ~gcls ~db:db_name with
             | None ->
               {
                 Params.n_o = 0;
                 n_qa = 0;
                 n_pa = 0;
                 n_ta = 0;
                 r_pps = 1.0;
                 r_m = 1.0;
                 r_as = 1.0;
                 r_ss = 1.0;
               }
             | Some local_cls ->
               let missing = Global_schema.missing_attrs gs ~gcls ~db:db_name in
               let attr_of (info : Analysis.atom_info) =
                 match List.rev info.Analysis.pred.Predicate.path with
                 | a :: _ -> a
                 | [] -> assert false
               in
               let local_infos, missing_infos =
                 List.partition
                   (fun info -> not (List.mem (attr_of info) missing))
                   infos
               in
               let n_pa = List.length local_infos in
               let local_attrs = List.map attr_of local_infos in
               let r_pps =
                 List.fold_left
                   (fun acc info -> acc *. pred_selectivity fed info ~gcls)
                   1.0 local_infos
               in
               let r_as =
                 List.fold_left
                   (fun acc info -> acc *. pred_selectivity fed info ~gcls)
                   1.0 missing_infos
               in
               let r_m =
                 if missing_infos <> [] then 1.0
                 else null_ratio db ~cls:local_cls ~attrs:local_attrs
               in
               {
                 Params.n_o = Database.extent_size db local_cls;
                 n_qa =
                   Involved.local_projection_width involved gs ~db:db_name ~gcls;
                 n_pa;
                 n_ta = targets_on_class;
                 r_pps;
                 r_m;
                 r_as;
                 (* signatures pre-filter with roughly the checks' own
                    equality selectivity *)
                 r_ss = r_as;
               })
           databases)
    in
    {
      Params.n_p;
      r_ps;
      r_r = r_r_of gcls;
      r_iso = isomerism_ratio fed ~gcls;
      per_db;
    }
  in
  {
    Params.n_db;
    classes =
      Array.of_list (List.map build_class analysis.Analysis.classes_involved);
  }

let default_strategies = [ Strategy.Ca; Strategy.Cf; Strategy.Bl; Strategy.Pl ]

let predict ?(cost = Cost.default) ?(strategies = default_strategies) fed analysis =
  let sample = profile fed analysis in
  List.map
    (fun strategy ->
      let t = Param_sim.simulate ~cost strategy sample in
      { strategy; total = t.Param_sim.total; response = t.Param_sim.response })
    strategies

let choose ?cost ?strategies ~objective fed analysis =
  let predictions = predict ?cost ?strategies fed analysis in
  let key p =
    match objective with
    | Total_time -> Time.to_us p.total
    | Response_time -> Time.to_us p.response
  in
  let sorted = List.sort (fun a b -> Float.compare (key a) (key b)) predictions in
  match sorted with
  | best :: _ -> (best.strategy, sorted)
  | [] -> invalid_arg "Planner.choose: no strategies"

let pp_prediction ppf p =
  Format.fprintf ppf "%-4s predicted total %a, response %a"
    (Strategy.to_string p.strategy)
    Time.pp p.total Time.pp p.response
