(** Cost-based strategy selection.

    The paper compares its strategies over sampled workload parameters; a
    system must pick one per query. This planner measures the {e actual}
    federation — extent cardinalities, schema-level missing attributes,
    per-object null rates, observed predicate selectivities, reference and
    isomerism ratios — expresses them in the paper's Table 2 vocabulary, and
    runs the parametric cost simulation over them for every strategy. The
    cheapest strategy under the chosen objective is recommended.

    Profiling scans extents (catalog statistics would normally be maintained
    incrementally); predictions reuse the experiment harness's formulas
    through the {!profile} sample and {!Param_sim}, so planner and
    experiment harness can never drift apart. *)

open Msdq_fed
open Msdq_query
open Msdq_simkit
open Msdq_exec

type objective = Total_time | Response_time

type prediction = {
  strategy : Strategy.t;
  total : Time.t;  (** predicted total execution time *)
  response : Time.t;  (** predicted response time *)
}

val profile : Federation.t -> Analysis.t -> Msdq_workload.Params.sample
(** The federation's statistics for this query, as one Table-2 parameter
    sample: class index 0 is the range class, per-database entries cover
    every component database (cardinality 0 where a class has no
    constituent). *)

val predict :
  ?cost:Cost.t -> ?strategies:Strategy.t list -> Federation.t -> Analysis.t ->
  prediction list
(** Predictions for the given strategies (default: CA, CF, BL, PL), in
    input order. *)

val choose :
  ?cost:Cost.t -> ?strategies:Strategy.t list -> objective:objective ->
  Federation.t -> Analysis.t -> Strategy.t * prediction list
(** The recommended strategy and all predictions (sorted best-first under
    the objective). *)

val pp_prediction : Format.formatter -> prediction -> unit
