(** Adaptive per-query strategy selection (the [AUTO] strategy).

    The paper's cost model predicts CA vs BL vs PL cost from catalog
    statistics ({!Planner.profile} + the Table-1 simulation); this module
    closes ROADMAP item 2's loop by {e using} those predictions, blended
    with what the telemetry {!Msdq_telemetry.Store} actually observed in
    earlier runs:

    - every candidate's model prediction is normalized into a {e ratio}
      against the candidates' mean (predictions and observations live on
      different clocks — a serve-path latency includes queueing the solo
      model never charges — so only relative standings are comparable);
    - a store observation for a strategy contributes its own latency
      ratio, weighted by [beta = w / (w + prior)] where [w] is the
      store's accumulated observation weight: an empty store defers
      entirely to the model, a well-fed one mostly to the evidence;
    - the strategy with the smallest blended score wins; ties resolve in
      {!candidates} order (CA first).

    Degraded-mode fallback: when the caller reports sites whose recovery
    breakers ({!Msdq_exec.Recovery.Breaker}) are open and the winner is a
    localized strategy whose assistant checks could target one of them,
    the decision switches to CA — CA's extent shipments are critical
    transfers that wait out outages rather than dropping, so it degrades
    gracefully where PL's check round trips would be abandoned wholesale.

    Selection never changes semantics: the decision only picks which
    strategy executes; answers stay byte-identical to the chosen fixed
    strategy's answers (qcheck-pinned in [test/test_opt.ml]). *)

open Msdq_fed
open Msdq_query
open Msdq_exec

val candidates : Strategy.t list
(** [CA; BL; PL] — the strategies AUTO arbitrates between. *)

type score = {
  strategy : Strategy.t;
  predicted_us : float;  (** model prediction under the objective *)
  pred_ratio : float;  (** prediction / mean over candidates *)
  observed : (float * float) option;
      (** [(mean observed latency us, weight)] from the store, if any *)
  blended : float;  (** the ranking key: smaller is better *)
}

type decision = {
  preferred : Strategy.t;  (** unconstrained argmin of the blended score *)
  chosen : Strategy.t;  (** after degraded-site fallback *)
  switched : bool;  (** [chosen <> preferred] *)
  scores : score list;  (** in {!candidates} order *)
  predictions : Planner.prediction list;  (** raw model predictions *)
  reason : string option;  (** why the fallback switched, when it did *)
}

val check_sites : Federation.t -> Analysis.t -> int list
(** Sites a localized execution of this query could target with assistant
    checks: every database holding a constituent of an involved class, in
    federation order. *)

val decide :
  ?cost:Cost.t ->
  ?store:Msdq_telemetry.Store.t ->
  ?objective:Planner.objective ->
  ?degraded:int list ->
  ?gray:int list ->
  ?overload:float ->
  Federation.t ->
  Analysis.t ->
  decision
(** Pick a strategy for one query. [objective] defaults to
    [Response_time] (a served query's latency is its response time);
    [degraded] lists sites whose breakers are currently open. [gray] lists
    sites detected as gray — up and answering, but persistently slower than
    their observed baseline (the serve engine feeds its slow-leg EWMA
    here): a localized preference whose check sites intersect [gray]
    falls back to CA exactly like the degraded fallback, with its own
    reason ("check site(s) N gray (slow but up): falling back to CA");
    sites already covered by [degraded] keep the breaker reason. [overload]
    (default 0) is a backpressure score — the serve engine feeds queue
    depth and its deadline-miss EWMA here — added to each candidate's
    blended score as [overload * pred_ratio], so rising pressure shifts
    the argmin toward the cheapest plan while zero leaves the ranking
    untouched; it must be non-negative and finite or the call raises
    [Invalid_argument]. Deterministic: same federation, analysis, store
    contents, degraded set and overload — same decision. *)

val pp_decision : Format.formatter -> decision -> unit
