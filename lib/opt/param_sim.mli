(** The paper's performance study methodology: a parametric simulation.

    The evaluation of Section 4 does not execute real data; it draws 500
    parameter sets from Table 2 per configuration and estimates the total
    execution time and response time of each algorithm from the cost
    constants of Table 1. This module reproduces that: from one parameter
    {!Msdq_workload.Params.sample} it derives the expected cardinalities of
    every phase (survivors after local predicates, maybe ratios, unsolved
    items, assistant fan-out from [R_iso] and [N_iso], check selectivities),
    builds the same task graph the concrete executor builds — same sites,
    same resources, same dependencies — and runs it through the
    discrete-event engine.

    The estimation formulas are documented inline; DESIGN.md discusses how
    each maps to a Table 2 parameter. *)

open Msdq_simkit
open Msdq_workload

type times = { total : Time.t; response : Time.t }

type overrides = {
  root_local_selectivity : float option;
      (** Figure 11's knob: force the selectivity of the local predicates on
          the root class in every database. *)
}

val no_overrides : overrides

val simulate :
  ?overrides:overrides -> cost:Msdq_exec.Cost.t -> Msdq_exec.Strategy.t ->
  Params.sample -> times

val average :
  ?overrides:overrides -> ?pool:Msdq_par.Pool.t -> cost:Msdq_exec.Cost.t ->
  samples:int -> seed:int -> ranges:Params.ranges -> Msdq_exec.Strategy.t ->
  times
(** Draws [samples] parameter sets (deterministically from [seed]) and
    averages both metrics — the paper's 500-sample averaging.

    Sample [i] draws from its own stream, [Rng.split_ix (Rng.create ~seed) ~i],
    and the averages reduce in index order; with [?pool] the samples evaluate
    on the pool's domains and the result stays bit-identical to the
    sequential path for any worker count. *)
