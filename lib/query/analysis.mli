(** Semantic analysis of queries against the global schema.

    Checks that the range class exists, that every target and predicate path
    resolves fully (the global schema holds the attribute union, so a valid
    global query never has a schema-level missing attribute {e globally} —
    missingness is a per-constituent notion), that target and predicate
    final attributes are primitive, and that each predicate's operand
    inhabits its attribute's type. Also derives the classes the query
    involves: the paper's range class and branch classes. *)

open Msdq_odb

exception Error of string

type atom_info = {
  pred : Predicate.t;
  steps : Path.step list;
  final_type : Schema.attr_type;
}

type t = {
  query : Ast.t;
  range_class : string;
  targets : (Path.t * Schema.attr_type) list;
  atoms : atom_info list;  (** in query order *)
  classes_involved : string list;
      (** range class first, then branch classes in first-use order *)
}

val analyze : Schema.t -> Ast.t -> t
(** Raises {!Error} with a human-readable message on any violation. *)

val branch_classes : t -> string list
(** [classes_involved] without the range class. *)

val predicates_on_class : t -> string -> Predicate.t list
(** Predicates whose final attribute lives on the given class — the paper's
    per-class predicate count [N_p^k]. *)
