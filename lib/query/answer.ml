open Msdq_odb

type status = Certain | Maybe

type row = { goid : Oid.Goid.t; values : Value.t list; status : status }

type reason =
  | Fault of string
  | Deadline of { elapsed_us : float; budget_us : float }

let reason_to_string = function
  | Fault why -> why
  | Deadline { elapsed_us; budget_us } ->
      Printf.sprintf
        "deadline exceeded: checks abandoned at %.0f us of a %.0f us budget"
        elapsed_us budget_us

type t = {
  targets : Path.t list;
  rows : row list;
  index : status Oid.Goid.Map.t;
  degraded : Oid.Goid.Set.t;
  reasons : reason Oid.Goid.Map.t; (* degraded provenance, per entity *)
  cached : Oid.Goid.Set.t; (* certified via cache-served verdicts *)
}

let make ~targets rows =
  let sorted = List.sort (fun a b -> Oid.Goid.compare a.goid b.goid) rows in
  let index =
    List.fold_left
      (fun acc r ->
        if Oid.Goid.Map.mem r.goid acc then
          invalid_arg
            (Printf.sprintf "Answer.make: duplicate goid %s"
               (Oid.Goid.to_string r.goid))
        else Oid.Goid.Map.add r.goid r.status acc)
      Oid.Goid.Map.empty sorted
  in
  { targets; rows = sorted; index; degraded = Oid.Goid.Set.empty;
    reasons = Oid.Goid.Map.empty; cached = Oid.Goid.Set.empty }

let degraded t = t.degraded
let degraded_reason t goid = Oid.Goid.Map.find_opt goid t.reasons

let annotate_degraded t ~reasons =
  let reasons =
    List.fold_left
      (fun acc (g, why) ->
        if Oid.Goid.Set.mem g t.degraded && not (Oid.Goid.Map.mem g acc) then
          Oid.Goid.Map.add g why acc
        else acc)
      t.reasons reasons
  in
  { t with reasons }

let demote t ~goids =
  let rows =
    List.map
      (fun r ->
        if r.status = Certain && Oid.Goid.Set.mem r.goid goids then
          { r with status = Maybe }
        else r)
      t.rows
  in
  let index =
    List.fold_left (fun acc r -> Oid.Goid.Map.add r.goid r.status acc)
      Oid.Goid.Map.empty rows
  in
  let present =
    Oid.Goid.Set.filter (fun g -> Oid.Goid.Map.mem g index) goids
  in
  { t with rows; index; degraded = Oid.Goid.Set.union t.degraded present }

let cached t = t.cached

let mark_cached t ~goids =
  let present = Oid.Goid.Set.filter (fun g -> Oid.Goid.Map.mem g t.index) goids in
  { t with cached = Oid.Goid.Set.union t.cached present }

let targets t = t.targets
let rows t = t.rows
let certain t = List.filter (fun r -> r.status = Certain) t.rows
let maybe t = List.filter (fun r -> r.status = Maybe) t.rows
let size t = List.length t.rows
let find t goid = List.find_opt (fun r -> Oid.Goid.equal r.goid goid) t.rows
let status_of t goid = Oid.Goid.Map.find_opt goid t.index

let goids t status =
  List.fold_left
    (fun acc r -> if r.status = status then Oid.Goid.Set.add r.goid acc else acc)
    Oid.Goid.Set.empty t.rows

let same_statuses a b =
  Oid.Goid.Set.equal (goids a Certain) (goids b Certain)
  && Oid.Goid.Set.equal (goids a Maybe) (goids b Maybe)

let subsumes ~strong ~weak =
  let strong_all = Oid.Goid.Set.union (goids strong Certain) (goids strong Maybe) in
  let weak_all = Oid.Goid.Set.union (goids weak Certain) (goids weak Maybe) in
  (* strong decides at least as much: certain(weak) <= certain(strong) *)
  Oid.Goid.Set.subset (goids weak Certain) (goids strong Certain)
  (* and strong never resurrects an object weak eliminated, nor loses one
     weak kept *)
  && Oid.Goid.Set.subset strong_all weak_all

let equal_status (a : status) (b : status) = a = b
let status_to_string = function Certain -> "certain" | Maybe -> "maybe"

let pp_row degraded cached ppf r =
  Format.fprintf ppf "%a [%s%s%s]: %s" Oid.Goid.pp r.goid
    (status_to_string r.status)
    (if Oid.Goid.Set.mem r.goid degraded then ", degraded" else "")
    (if Oid.Goid.Set.mem r.goid cached then ", cached" else "")
    (String.concat ", " (List.map Value.to_string r.values))

let pp ppf t =
  let certain_rows = certain t and maybe_rows = maybe t in
  let pp_row = pp_row t.degraded t.cached in
  Format.fprintf ppf "@[<v>certain results (%d):@," (List.length certain_rows);
  List.iter (fun r -> Format.fprintf ppf "  %a@," pp_row r) certain_rows;
  Format.fprintf ppf "maybe results (%d):@," (List.length maybe_rows);
  List.iter (fun r -> Format.fprintf ppf "  %a@," pp_row r) maybe_rows;
  Format.fprintf ppf "@]"
