open Msdq_odb

exception Error of Lexer.position * string

type state = { mutable toks : (Lexer.token * Lexer.position) list }

let fail pos fmt = Printf.ksprintf (fun s -> raise (Error (pos, s))) fmt

let peek st =
  match st.toks with
  | (tok, pos) :: _ -> (tok, pos)
  | [] -> assert false (* EOF is always present *)

let next st =
  match st.toks with
  | ((_, _) as hd) :: tl ->
    st.toks <- (if tl = [] then [ hd ] else tl);
    hd
  | [] -> assert false

let expect st tok what =
  let got, pos = next st in
  if got <> tok then fail pos "expected %s, got %s" what (Lexer.token_to_string got)

let ident st what =
  match next st with
  | Lexer.IDENT s, _ -> s
  | tok, pos -> fail pos "expected %s, got %s" what (Lexer.token_to_string tok)

(* A dotted path: ident {"." ident}. *)
let dotted_path st =
  let first = ident st "an identifier" in
  let rec go acc =
    match peek st with
    | Lexer.DOT, _ ->
      ignore (next st);
      let seg = ident st "a path segment" in
      go (seg :: acc)
    | _ -> List.rev acc
  in
  go [ first ]

(* Strips the binding variable from a parsed dotted path. *)
let strip_binding ~binding ~pos path =
  match path with
  | b :: (_ :: _ as rest) when String.equal b binding -> rest
  | b :: [] when String.equal b binding ->
    fail pos "path %s names the binding variable but no attribute" b
  | seg :: _ ->
    fail pos "path must start with the binding variable %s, got %s" binding seg
  | [] -> assert false

let literal st =
  match next st with
  | Lexer.INT n, _ -> Value.Int n
  | Lexer.FLOAT f, _ -> Value.Float f
  | Lexer.STRING s, _ -> Value.Str s
  | Lexer.TRUE, _ -> Value.Bool true
  | Lexer.FALSE, _ -> Value.Bool false
  | tok, pos -> fail pos "expected a literal, got %s" (Lexer.token_to_string tok)

let comparison_op st =
  match next st with
  | Lexer.EQ, _ -> Predicate.Eq
  | Lexer.NE, _ -> Predicate.Ne
  | Lexer.LT, _ -> Predicate.Lt
  | Lexer.LE, _ -> Predicate.Le
  | Lexer.GT, _ -> Predicate.Gt
  | Lexer.GE, _ -> Predicate.Ge
  | tok, pos ->
    fail pos "expected a comparison operator, got %s" (Lexer.token_to_string tok)

let atom st ~binding =
  let _, pos = peek st in
  let path = dotted_path st in
  let path = strip_binding ~binding ~pos path in
  let op = comparison_op st in
  let operand = literal st in
  Cond.Atom (Predicate.make ~path ~op ~operand)

let rec cond st ~binding =
  let first = and_expr st ~binding in
  let rec go acc =
    match peek st with
    | Lexer.OR, _ ->
      ignore (next st);
      go (and_expr st ~binding :: acc)
    | _ -> List.rev acc
  in
  match go [ first ] with [ single ] -> single | many -> Cond.Or many

and and_expr st ~binding =
  let first = not_expr st ~binding in
  let rec go acc =
    match peek st with
    | Lexer.AND, _ ->
      ignore (next st);
      go (not_expr st ~binding :: acc)
    | _ -> List.rev acc
  in
  match go [ first ] with [ single ] -> single | many -> Cond.And many

and not_expr st ~binding =
  match peek st with
  | Lexer.NOT, _ ->
    ignore (next st);
    Cond.Not (not_expr st ~binding)
  | Lexer.LPAREN, _ ->
    ignore (next st);
    let inner = cond st ~binding in
    expect st Lexer.RPAREN "')'";
    inner
  | _ -> atom st ~binding

let query st =
  expect st Lexer.SELECT "select";
  (* Targets are parsed as raw paths first; the binding is only known after
     FROM, so stripping happens afterwards. *)
  let raw_targets =
    let first = (snd (peek st), dotted_path st) in
    let rec go acc =
      match peek st with
      | Lexer.COMMA, _ ->
        ignore (next st);
        let pos = snd (peek st) in
        go ((pos, dotted_path st) :: acc)
      | _ -> List.rev acc
    in
    go [ first ]
  in
  expect st Lexer.FROM "from";
  let range_class = ident st "a class name" in
  let range_db =
    match peek st with
    | Lexer.AT, _ ->
      ignore (next st);
      Some (ident st "a database name")
    | _ -> None
  in
  let binding = ident st "a binding variable" in
  let where =
    match peek st with
    | Lexer.WHERE, _ ->
      ignore (next st);
      cond st ~binding
    | _ -> Cond.tt
  in
  (match peek st with
  | Lexer.EOF, _ -> ()
  | tok, pos -> fail pos "unexpected %s after query" (Lexer.token_to_string tok));
  let targets =
    List.map (fun (pos, path) -> strip_binding ~binding ~pos path) raw_targets
  in
  Ast.make ~range_class ?range_db ~binding ~targets ~where ()

let parse src =
  let toks =
    try Lexer.tokens src with Lexer.Error (pos, msg) -> raise (Error (pos, msg))
  in
  query { toks }

let parse_result src =
  match parse src with
  | ast -> Ok ast
  | exception Error (pos, msg) ->
    Error (Printf.sprintf "line %d, column %d: %s" pos.Lexer.line pos.Lexer.col msg)
