(** Abstract syntax of the SQL/X query subset.

    The paper's queries have one range class bound to a variable, target
    paths, and nested predicates over path expressions:

    {v
    select X.name, X.advisor.name
    from Student X
    where X.address.city = "Taipei" and X.advisor.speciality = "database"
    v}

    Paths in targets and predicates are stored relative to the range class
    (the leading binding variable is stripped by the parser). [range_db]
    carries the [Class@DB] annotation of the paper's derived local queries
    (Figure 3(b)); it is [None] for global queries. *)

open Msdq_odb

type t = {
  range_class : string;
  range_db : string option;
  binding : string;
  targets : Path.t list;
  where : Cond.t;
}

val make :
  ?range_db:string -> ?binding:string -> range_class:string ->
  targets:Path.t list -> where:Cond.t -> unit -> t
(** [binding] defaults to ["X"]. Raises [Invalid_argument] when [targets]
    is empty. *)

val conjunctive_where : t -> Predicate.t list option
(** The predicate list when the query is in the paper's conjunctive form. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
