(** Lexer for the SQL/X query subset. *)

type token =
  | SELECT
  | FROM
  | WHERE
  | AND
  | OR
  | NOT
  | TRUE
  | FALSE
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | EQ  (** [=] *)
  | NE  (** [!=] or [<>] *)
  | LT
  | LE
  | GT
  | GE
  | COMMA
  | DOT
  | LPAREN
  | RPAREN
  | AT  (** [@] in [Class@DB] *)
  | EOF

type position = { line : int; col : int }

exception Error of position * string

val tokens : string -> (token * position) list
(** Tokenizes a whole query. Keywords are case-insensitive; identifiers may
    contain letters, digits, [_], ['] and inner hyphens (so [s-no] is one
    identifier, while [- 3] and [-3] after an operator lex as a number).
    Raises {!Error} on an unterminated string or an illegal character. *)

val token_to_string : token -> string
