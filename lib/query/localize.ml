open Msdq_odb
open Msdq_fed

type locality = Local | Cut_at of { at_class : string; rest : Path.t }

type atom_plan = { pred : Predicate.t; locality : locality }

type db_plan = {
  db : string;
  local_class : string;
  atoms : atom_plan list;
  local_preds : Predicate.t list;
  unsolved_preds : Predicate.t list;
  local_query : Ast.t;
}

exception Unsupported of string

let atom_locality db ~local_class (pred : Predicate.t) =
  match Path.resolve (Database.schema db) ~root:local_class pred.Predicate.path with
  | Path.Full _ -> Local
  | Path.Cut { at_class; rest; _ } -> Cut_at { at_class; rest }
  | Path.Invalid msg ->
    raise
      (Unsupported
         (Printf.sprintf "predicate %s invalid for database %s: %s"
            (Predicate.to_string pred) (Database.name db) msg))

let plan fed (analysis : Analysis.t) =
  let gs = Federation.global_schema fed in
  let query = analysis.Analysis.query in
  let root = analysis.Analysis.range_class in
  List.filter_map
    (fun (db_name, db) ->
      match Global_schema.constituent_of gs ~gcls:root ~db:db_name with
      | None -> None
      | Some local_class ->
        let atoms =
          List.map
            (fun (info : Analysis.atom_info) ->
              let pred = info.Analysis.pred in
              { pred; locality = atom_locality db ~local_class pred })
            analysis.Analysis.atoms
        in
        let local_preds =
          List.filter_map
            (fun a -> match a.locality with Local -> Some a.pred | Cut_at _ -> None)
            atoms
        in
        let unsolved_preds =
          List.filter_map
            (fun a -> match a.locality with Cut_at _ -> Some a.pred | Local -> None)
            atoms
        in
        let where =
          if Cond.is_conjunctive query.Ast.where then
            Cond.conj (List.map (fun p -> Cond.Atom p) local_preds)
          else query.Ast.where
        in
        let local_query =
          Ast.make ~range_db:db_name ~binding:query.Ast.binding
            ~range_class:local_class ~targets:query.Ast.targets ~where ()
        in
        Some { db = db_name; local_class; atoms; local_preds; unsolved_preds; local_query })
    (Federation.databases fed)
