open Msdq_odb

type t =
  | Atom of Predicate.t
  | And of t list
  | Or of t list
  | Not of t

let tt = And []

let conj ts =
  let flat =
    List.concat_map (function And inner -> inner | other -> [ other ]) ts
  in
  match flat with [ single ] -> single | flat -> And flat

let rec atoms = function
  | Atom p -> [ p ]
  | And ts | Or ts -> List.concat_map atoms ts
  | Not t -> atoms t

let conjuncts t =
  let rec go acc = function
    | Atom p -> Some (p :: acc)
    | And ts ->
      List.fold_left (fun acc t -> Option.bind acc (fun acc -> go acc t)) (Some acc) ts
    | Or _ | Not _ -> None
  in
  Option.map List.rev (go [] t)

let is_conjunctive t = Option.is_some (conjuncts t)

let rec eval oracle = function
  | Atom p -> oracle p
  | And ts -> Truth.conj_all (List.map (eval oracle) ts)
  | Or ts -> Truth.disj_all (List.map (eval oracle) ts)
  | Not t -> Truth.neg (eval oracle t)

let rec map_atoms f = function
  | Atom p -> Atom (f p)
  | And ts -> And (List.map (map_atoms f) ts)
  | Or ts -> Or (List.map (map_atoms f) ts)
  | Not t -> Not (map_atoms f t)

let rec pp ppf = function
  | Atom p -> Predicate.pp ppf p
  | And [] -> Format.pp_print_string ppf "true"
  | Or [] -> Format.pp_print_string ppf "false"
  | And ts ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf " and ")
         pp)
      ts
  | Or ts ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " or ") pp)
      ts
  | Not t -> Format.fprintf ppf "not %a" pp t

let to_string t = Format.asprintf "%a" pp t

let rec equal a b =
  match (a, b) with
  | Atom p, Atom q -> Predicate.equal p q
  | And xs, And ys | Or xs, Or ys -> List.equal equal xs ys
  | Not x, Not y -> equal x y
  | (Atom _ | And _ | Or _ | Not _), _ -> false
