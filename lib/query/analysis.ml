open Msdq_odb

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type atom_info = {
  pred : Predicate.t;
  steps : Path.step list;
  final_type : Schema.attr_type;
}

type t = {
  query : Ast.t;
  range_class : string;
  targets : (Path.t * Schema.attr_type) list;
  atoms : atom_info list;
  classes_involved : string list;
}

let resolve_full schema ~root ~what path =
  match Path.resolve schema ~root path with
  | Path.Full (steps, ty) -> (steps, ty)
  | Path.Cut { at_class; rest; _ } ->
    err "%s %s: class %s has no attribute %s" what (Path.to_string path) at_class
      (match rest with a :: _ -> a | [] -> "?")
  | Path.Invalid msg -> err "%s %s: %s" what (Path.to_string path) msg

let check_primitive ~what path = function
  | Schema.Prim p -> Schema.Prim p
  | Schema.Complex c ->
    err "%s %s ends on complex attribute of class %s; select or compare a \
         primitive attribute"
      what (Path.to_string path) c

let analyze schema (query : Ast.t) =
  let root = query.Ast.range_class in
  if not (Schema.mem_class schema root) then
    err "unknown range class %s" root;
  let classes = ref [ root ] in
  let note_classes steps =
    List.iter
      (fun st ->
        match st.Path.attr.Schema.atype with
        | Schema.Complex domain ->
          if not (List.mem domain !classes) then classes := domain :: !classes
        | Schema.Prim _ -> ())
      steps
  in
  let targets =
    List.map
      (fun path ->
        let steps, ty = resolve_full schema ~root ~what:"target" path in
        let ty = check_primitive ~what:"target" path ty in
        note_classes steps;
        (path, ty))
      query.Ast.targets
  in
  let atoms =
    List.map
      (fun (pred : Predicate.t) ->
        let path = pred.Predicate.path in
        let steps, ty = resolve_full schema ~root ~what:"predicate" path in
        let ty = check_primitive ~what:"predicate" path ty in
        if not (Schema.value_matches schema ty pred.Predicate.operand) then
          err "predicate %s: operand %s does not inhabit type %s"
            (Predicate.to_string pred)
            (Value.to_string pred.Predicate.operand)
            (Schema.attr_type_to_string ty);
        (match (ty, pred.Predicate.op) with
        | Schema.Prim Schema.P_bool, (Predicate.Lt | Predicate.Le | Predicate.Gt | Predicate.Ge) ->
          err "predicate %s: ordered comparison on a boolean attribute"
            (Predicate.to_string pred)
        | _ -> ());
        note_classes steps;
        { pred; steps; final_type = ty })
      (Cond.atoms query.Ast.where)
  in
  {
    query;
    range_class = root;
    targets;
    atoms;
    classes_involved = List.rev !classes;
  }

let branch_classes t =
  List.filter (fun c -> not (String.equal c t.range_class)) t.classes_involved

let predicates_on_class t cls =
  List.filter_map
    (fun info ->
      match List.rev info.steps with
      | last :: _ when String.equal last.Path.on_class cls -> Some info.pred
      | _ -> None)
    t.atoms
