open Msdq_odb

type t = {
  range_class : string;
  range_db : string option;
  binding : string;
  targets : Path.t list;
  where : Cond.t;
}

let make ?range_db ?(binding = "X") ~range_class ~targets ~where () =
  if targets = [] then invalid_arg "Ast.make: no target paths";
  { range_class; range_db; binding; targets; where }

let conjunctive_where t = Cond.conjuncts t.where

let pp ppf t =
  let pp_target ppf p = Format.fprintf ppf "%s.%a" t.binding Path.pp p in
  let pp_from ppf () =
    match t.range_db with
    | None -> Format.fprintf ppf "%s %s" t.range_class t.binding
    | Some db -> Format.fprintf ppf "%s@%s %s" t.range_class db t.binding
  in
  Format.fprintf ppf "@[<hov 2>select %a@ from %a"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_target)
    t.targets pp_from ();
  (match t.where with
  | Cond.And [] -> ()
  | w ->
    (* Prefix predicate paths with the binding variable for display. *)
    let w =
      Cond.map_atoms
        (fun p ->
          Predicate.make
            ~path:(t.binding :: p.Predicate.path)
            ~op:p.Predicate.op ~operand:p.Predicate.operand)
        w
    in
    Format.fprintf ppf "@ where %a" Cond.pp w);
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t
