(** Query localization (paper, Section 2.3 and Figure 3(b)).

    For every component database holding a constituent of the range class, a
    {e local query} is derived: predicates whose whole path chain is defined
    by the database's constituent classes are {e local predicates} and stay;
    predicates hitting a schema-level missing attribute are {e unsolved} for
    that database and are removed (they can only be decided through
    assistant objects). Null values cause additional, per-object unsolved
    predicates — those are discovered during evaluation, not here. *)

open Msdq_odb
open Msdq_fed

type locality =
  | Local
      (** every class on the path defines its attribute in this database *)
  | Cut_at of { at_class : string; rest : Path.t }
      (** the path hits missing attribute [List.hd rest] of the local class
          [at_class] *)

type atom_plan = { pred : Predicate.t; locality : locality }

type db_plan = {
  db : string;
  local_class : string;  (** constituent of the range class *)
  atoms : atom_plan list;  (** in query order *)
  local_preds : Predicate.t list;  (** the Local subset *)
  unsolved_preds : Predicate.t list;  (** the Cut_at subset *)
  local_query : Ast.t;
      (** paper-style derived query: original targets, range [class@db],
          where = conjunction of local predicates (conjunctive queries) or
          the original tree (extension) *)
}

exception Unsupported of string

val plan : Federation.t -> Analysis.t -> db_plan list
(** One plan per database hosting a constituent of the range class, in
    federation database order. Raises {!Unsupported} if a predicate path is
    structurally invalid for a component schema (a primitive/complex clash
    that schema integration would have rejected). *)
