(** Query answers: certain results plus maybe results.

    Following Codd's maybe semantics as used by the paper, an answer lists
    the objects (identified by GOid) that definitely satisfy the query and,
    separately, those that might — i.e. whose predicate conjunction is
    Unknown because of missing data. Each row carries the projected target
    values; a value that is missing federation-wide projects as [Null]. *)

open Msdq_odb

type status = Certain | Maybe

type row = { goid : Oid.Goid.t; values : Value.t list; status : status }

type reason =
  | Fault of string
      (** degraded by an execution fault; carries a human-readable account
          of the lost round trip or failover chain *)
  | Deadline of { elapsed_us : float; budget_us : float }
      (** degraded by a latency budget: the query's outstanding assistant
          checks were abandoned when its elapsed time would have reached
          [elapsed_us] against a [budget_us] deadline *)

val reason_to_string : reason -> string
(** One-line rendering of the provenance, stable across runs. *)

type t

val make : targets:Path.t list -> row list -> t
(** Rows are sorted by GOid; a duplicate GOid raises [Invalid_argument]
    (executors must merge per-entity results before building the answer). *)

val targets : t -> Path.t list

val rows : t -> row list

val certain : t -> row list

val maybe : t -> row list

val size : t -> int

val find : t -> Oid.Goid.t -> row option

val status_of : t -> Oid.Goid.t -> status option

val goids : t -> status -> Oid.Goid.Set.t

val degraded : t -> Oid.Goid.Set.t
(** Entities whose classification was degraded by execution faults: they are
    reported maybe (uncertified) although a fault-free execution might have
    certified or eliminated them. Empty for fault-free runs. *)

val demote : t -> goids:Oid.Goid.Set.t -> t
(** Fault degradation: every listed row that is certain becomes maybe, and
    every listed GOid present in the answer gains degraded provenance
    (see {!degraded}). GOids absent from the answer are ignored. *)

val annotate_degraded : t -> reasons:(Oid.Goid.t * reason) list -> t
(** Attach structured provenance to already-degraded entities — e.g. the
    failover chain that failed to answer a check ([Fault "check vs DB2
    dropped; failover DB3 dropped; no live replica"]) or the latency
    budget that abandoned it ([Deadline _]). Entities not in {!degraded},
    and entities that already carry a reason, are left untouched. *)

val degraded_reason : t -> Oid.Goid.t -> reason option
(** The provenance recorded by {!annotate_degraded}, if any. *)

val mark_cached : t -> goids:Oid.Goid.Set.t -> t
(** Cache provenance (workload engine): the listed entities were certified
    using at least one verdict served from the cross-query verdict cache
    rather than a fresh assistant round trip. Pure metadata — the rows,
    statuses and values are untouched, and {!same_statuses}/{!subsumes}
    ignore it — but {!pp} flags the rows, honouring the completeness
    contract of reporting which answers were served from cache. GOids
    absent from the answer are ignored. *)

val cached : t -> Oid.Goid.Set.t
(** Entities marked by {!mark_cached}. Empty unless a caching executor
    produced the answer. *)

val same_statuses : t -> t -> bool
(** Whether two answers classify exactly the same GOids as certain and as
    maybe (projected values are not compared). *)

val subsumes : strong:t -> weak:t -> bool
(** [subsumes ~strong ~weak]: the strong answer (more integrated knowledge,
    e.g. CA's) refines the weak one — every certain GOid of [weak] is
    certain in [strong], every GOid absent from [weak] is absent from
    [strong], and every maybe of [weak] is still present in [strong] (as
    certain or maybe). The localized strategies without deep certification
    produce answers that CA subsumes. *)

val pp : Format.formatter -> t -> unit

val equal_status : status -> status -> bool

val status_to_string : status -> string
