(** Recursive-descent parser for the SQL/X query subset.

    Grammar (keywords case-insensitive):
    {v
    query    ::= SELECT target {"," target}
                 FROM ident ["@" ident] ident
                 [WHERE cond]
    target   ::= ident {"." ident}             -- first component = binding
    cond     ::= andexpr {OR andexpr}
    andexpr  ::= notexpr {AND notexpr}
    notexpr  ::= NOT notexpr | "(" cond ")" | atom
    atom     ::= target op literal
    op       ::= "=" | "!=" | "<>" | "<" | "<=" | ">" | ">="
    literal  ::= int | float | string | TRUE | FALSE
    v}

    Target and predicate paths must start with the binding variable declared
    in the FROM clause; the parser strips it. *)

exception Error of Lexer.position * string

val parse : string -> Ast.t
(** Raises {!Error} (with position) on syntax errors, including
    {!Lexer.Error}s re-raised under this exception. *)

val parse_result : string -> (Ast.t, string) result
(** Like {!parse} but renders the error with its position. *)
