type token =
  | SELECT
  | FROM
  | WHERE
  | AND
  | OR
  | NOT
  | TRUE
  | FALSE
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | COMMA
  | DOT
  | LPAREN
  | RPAREN
  | AT
  | EOF

type position = { line : int; col : int }

exception Error of position * string

let error pos fmt = Printf.ksprintf (fun s -> raise (Error (pos, s))) fmt

let keyword_of_string s =
  match String.lowercase_ascii s with
  | "select" -> Some SELECT
  | "from" -> Some FROM
  | "where" -> Some WHERE
  | "and" -> Some AND
  | "or" -> Some OR
  | "not" -> Some NOT
  | "true" -> Some TRUE
  | "false" -> Some FALSE
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let is_digit c = c >= '0' && c <= '9'

type cursor = { src : string; mutable i : int; mutable line : int; mutable col : int }

let peek cur k =
  let j = cur.i + k in
  if j < String.length cur.src then Some cur.src.[j] else None

let advance cur =
  (match peek cur 0 with
  | Some '\n' ->
    cur.line <- cur.line + 1;
    cur.col <- 1
  | Some _ -> cur.col <- cur.col + 1
  | None -> ());
  cur.i <- cur.i + 1

let position cur = { line = cur.line; col = cur.col }

let lex_ident cur =
  let start = cur.i in
  let rec go () =
    match peek cur 0 with
    | Some c when is_ident_char c ->
      advance cur;
      go ()
    | Some '-' -> (
      (* An inner hyphen continues the identifier only when followed by an
         identifier character: [s-no] is one token, [age<-3] is not. *)
      match peek cur 1 with
      | Some c when is_ident_char c || is_digit c ->
        advance cur;
        advance cur;
        go ()
      | Some _ | None -> ())
    | Some _ | None -> ()
  in
  go ();
  String.sub cur.src start (cur.i - start)

let lex_number cur pos ~negative =
  let start = cur.i in
  let rec digits () =
    match peek cur 0 with
    | Some c when is_digit c ->
      advance cur;
      digits ()
    | Some _ | None -> ()
  in
  digits ();
  let is_float =
    match (peek cur 0, peek cur 1) with
    | Some '.', Some c when is_digit c ->
      advance cur;
      digits ();
      true
    | _ -> false
  in
  let text = String.sub cur.src start (cur.i - start) in
  if is_float then
    match float_of_string_opt text with
    | Some f -> FLOAT (if negative then -.f else f)
    | None -> error pos "malformed number %s" text
  else
    match int_of_string_opt text with
    | Some n -> INT (if negative then -n else n)
    | None -> error pos "malformed number %s" text

let lex_string cur pos =
  advance cur;
  (* consume opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur 0 with
    | None -> error pos "unterminated string literal"
    | Some '"' -> advance cur
    | Some '\\' -> (
      match peek cur 1 with
      | Some ('"' as c) | Some ('\\' as c) ->
        Buffer.add_char buf c;
        advance cur;
        advance cur;
        go ()
      | Some c -> error pos "unsupported escape \\%c" c
      | None -> error pos "unterminated string literal")
    | Some c ->
      Buffer.add_char buf c;
      advance cur;
      go ()
  in
  go ();
  STRING (Buffer.contents buf)

let tokens src =
  let cur = { src; i = 0; line = 1; col = 1 } in
  let acc = ref [] in
  let emit tok pos = acc := (tok, pos) :: !acc in
  let rec loop () =
    match peek cur 0 with
    | None -> emit EOF (position cur)
    | Some (' ' | '\t' | '\r' | '\n') ->
      advance cur;
      loop ()
    | Some c when is_ident_start c ->
      let pos = position cur in
      let text = lex_ident cur in
      (match keyword_of_string text with
      | Some kw -> emit kw pos
      | None -> emit (IDENT text) pos);
      loop ()
    | Some c when is_digit c ->
      let pos = position cur in
      emit (lex_number cur pos ~negative:false) pos;
      loop ()
    | Some '-' -> (
      let pos = position cur in
      match peek cur 1 with
      | Some c when is_digit c ->
        advance cur;
        emit (lex_number cur pos ~negative:true) pos;
        loop ()
      | Some _ | None -> error pos "unexpected '-'")
    | Some '"' ->
      let pos = position cur in
      emit (lex_string cur pos) pos;
      loop ()
    | Some c ->
      let pos = position cur in
      (match c with
      | ',' ->
        advance cur;
        emit COMMA pos
      | '.' ->
        advance cur;
        emit DOT pos
      | '(' ->
        advance cur;
        emit LPAREN pos
      | ')' ->
        advance cur;
        emit RPAREN pos
      | '@' ->
        advance cur;
        emit AT pos
      | '=' ->
        advance cur;
        emit EQ pos
      | '!' -> (
        match peek cur 1 with
        | Some '=' ->
          advance cur;
          advance cur;
          emit NE pos
        | Some _ | None -> error pos "expected '=' after '!'")
      | '<' -> (
        match peek cur 1 with
        | Some '=' ->
          advance cur;
          advance cur;
          emit LE pos
        | Some '>' ->
          advance cur;
          advance cur;
          emit NE pos
        | Some _ | None ->
          advance cur;
          emit LT pos)
      | '>' -> (
        match peek cur 1 with
        | Some '=' ->
          advance cur;
          advance cur;
          emit GE pos
        | Some _ | None ->
          advance cur;
          emit GT pos)
      | c -> error pos "illegal character %C" c);
      loop ()
  in
  loop ();
  List.rev !acc

let token_to_string = function
  | SELECT -> "select"
  | FROM -> "from"
  | WHERE -> "where"
  | AND -> "and"
  | OR -> "or"
  | NOT -> "not"
  | TRUE -> "true"
  | FALSE -> "false"
  | IDENT s -> s
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | STRING s -> Printf.sprintf "%S" s
  | EQ -> "="
  | NE -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | COMMA -> ","
  | DOT -> "."
  | LPAREN -> "("
  | RPAREN -> ")"
  | AT -> "@"
  | EOF -> "<eof>"
