(** Predicate trees.

    The paper's algorithms assume predicates combined in conjunctive form;
    disjunction and negation are its announced future work. This module
    supports the full tree (the executors accept conjunctive queries for the
    paper's algorithms and general trees for the extension), with
    three-valued evaluation parameterized by an atom evaluator. *)

open Msdq_odb

type t =
  | Atom of Predicate.t
  | And of t list
  | Or of t list
  | Not of t

val tt : t
(** The empty conjunction: always true. *)

val conj : t list -> t
(** Flattens nested conjunctions. *)

val atoms : t -> Predicate.t list
(** All atoms, left to right, duplicates preserved. *)

val conjuncts : t -> Predicate.t list option
(** [Some atoms] when the tree is a pure conjunction of atoms (the paper's
    query form), [None] otherwise. *)

val is_conjunctive : t -> bool

val eval : (Predicate.t -> Truth.t) -> t -> Truth.t
(** Kleene evaluation with the given atom oracle. *)

val map_atoms : (Predicate.t -> Predicate.t) -> t -> t

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val equal : t -> t -> bool
