type ranges = {
  n_db : int;
  n_c : int * int;
  n_p : int * int;
  n_o : int * int;
  n_ta : int * int;
  r_r : float * float;
  r_m_base : float * float;
  ps_base : float;
  as_base : float;
  ss_base : float;
}

let default =
  {
    n_db = 3;
    n_c = (1, 4);
    n_p = (0, 3);
    n_o = (5000, 6000);
    n_ta = (0, 2);
    r_r = (0.5, 1.0);
    r_m_base = (0.0, 0.2);
    ps_base = 0.45;
    as_base = 0.55;
    ss_base = 0.6;
  }

type class_at_db = {
  n_o : int;
  n_qa : int;
  n_pa : int;
  n_ta : int;
  r_pps : float;
  r_m : float;
  r_as : float;
  r_ss : float;
}

type gclass = {
  n_p : int;
  r_ps : float;
  r_r : float;
  r_iso : float;
  per_db : class_at_db array;
}

type sample = { n_db : int; classes : gclass array }

let selectivity base n = if n <= 0 then 1.0 else base ** sqrt (float_of_int n)

let sample_class rng (ranges : ranges) ~n_db ~root =
  let lo_p, hi_p = ranges.n_p in
  let n_p = Rng.range rng ~lo:(if root then max 1 lo_p else lo_p) ~hi:hi_p in
  let r_ps = selectivity ranges.ps_base n_p in
  let lo_r, hi_r = ranges.r_r in
  let r_r = Rng.frange rng ~lo:lo_r ~hi:hi_r in
  let r_iso = 1.0 -. (0.9 ** float_of_int (n_db - 1)) in
  let per_db =
    Array.init n_db (fun _ ->
        let lo_o, hi_o = ranges.n_o in
        let n_o = Rng.range rng ~lo:lo_o ~hi:hi_o in
        let n_pa = Rng.range rng ~lo:0 ~hi:n_p in
        let lo_t, hi_t = ranges.n_ta in
        let n_ta = Rng.range rng ~lo:lo_t ~hi:hi_t in
        let n_qa = Rng.range rng ~lo:(max n_pa n_ta) ~hi:(n_pa + n_ta) in
        let missing = n_p - n_pa in
        let r_m =
          if missing > 0 then 1.0
          else
            let lo_m, hi_m = ranges.r_m_base in
            Rng.frange rng ~lo:lo_m ~hi:hi_m
        in
        {
          n_o;
          n_qa;
          n_pa;
          n_ta;
          r_pps = selectivity ranges.ps_base n_pa;
          r_m;
          r_as = selectivity ranges.as_base missing;
          r_ss = selectivity ranges.ss_base missing;
        })
  in
  { n_p; r_ps; r_r; r_iso; per_db }

let sample rng (ranges : ranges) =
  let n_db = ranges.n_db in
  let lo_c, hi_c = ranges.n_c in
  let n_c = Rng.range rng ~lo:lo_c ~hi:hi_c in
  let classes =
    Array.init n_c (fun k -> sample_class rng ranges ~n_db ~root:(k = 0))
  in
  { n_db; classes }

let total_predicates s =
  Array.fold_left (fun acc gc -> acc + gc.n_p) 0 s.classes

let pp_ranges ppf (r : ranges) =
  let pair (lo, hi) = Printf.sprintf "%d ~ %d" lo hi in
  let fpair (lo, hi) = Printf.sprintf "%g ~ %g" lo hi in
  Format.fprintf ppf
    "@[<v>N_db   = %d@,N_c    = %s@,N_p^k  = %s@,N_o    = %s@,N_ta   = %s@,R_r    \
     = %s@,R_ps   = %g^sqrt(N_p)@,R_iso  = 1 - 0.9^(N_db-1)@,R_pps  = \
     %g^sqrt(N_pa)@,R_m    = 1 if missing preds else %s@,R_as   = \
     %g^sqrt(N_p-N_pa)@,R_ss   = %g^sqrt(N_p-N_pa)@]"
    r.n_db (pair r.n_c) (pair r.n_p) (pair r.n_o) (pair r.n_ta) (fpair r.r_r)
    r.ps_base r.ps_base (fpair r.r_m_base) r.as_base r.ss_base
