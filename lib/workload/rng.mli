(** Deterministic splittable pseudo-random numbers (SplitMix64).

    Experiments draw 500 parameter sets per configuration; determinism and
    cheap splitting keep every figure reproducible bit-for-bit from a seed,
    independent of evaluation order. *)

type t

val create : seed:int -> t

val split : t -> t
(** An independent stream; the parent advances. *)

val split_ix : t -> i:int -> t
(** [split_ix t ~i] is the stream the [i+1]-th successive {!split} would
    return, derived without advancing [t]. Because the child depends only on
    the parent's current state and [i], tasks indexed by [i] draw identical
    streams no matter how they are scheduled across domains — the keystone of
    the parallel determinism contract (see docs/PARALLELISM.md). Raises
    [Invalid_argument] when [i] is negative. *)

val int : t -> bound:int -> int
(** Uniform in [0, bound). [bound] must be positive. *)

val range : t -> lo:int -> hi:int -> int
(** Uniform in [lo, hi] inclusive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val frange : t -> lo:float -> hi:float -> float

val bool : t -> p:float -> bool
(** True with probability [p]. *)

val pick : t -> 'a list -> 'a
(** Raises [Invalid_argument] on an empty list. *)
