open Msdq_odb
open Msdq_fed
open Msdq_query

type config = {
  seed : int;
  n_db : int;
  n_classes : int;
  n_entities : int;
  n_pred_attrs : int;
  domain : int;
  p_copy : float;
  p_host : float;
  p_attr_present : float;
  p_null : float;
  p_divergent : float;
}

let default =
  {
    seed = 42;
    n_db = 3;
    n_classes = 3;
    n_entities = 24;
    n_pred_attrs = 3;
    domain = 4;
    p_copy = 0.4;
    p_host = 0.8;
    p_attr_present = 0.7;
    p_null = 0.15;
    p_divergent = 0.0;
  }

let class_name k = Printf.sprintf "K%d" k
let db_name i = Printf.sprintf "DB%d" (i + 1)
let pred_attr j = Printf.sprintf "p%d" j

(* One real-world entity of one class: its shared attribute values (drawn
   once, so all copies are consistent) and its successor entity. *)
type entity = { values : int array; next_entity : int; mutable dbs : int list }

let generate cfg =
  let rng = Rng.create ~seed:cfg.seed in
  if cfg.n_classes < 1 then invalid_arg "Synth.generate: n_classes >= 1";
  if cfg.n_db < 1 then invalid_arg "Synth.generate: n_db >= 1";
  (* Entity structure. *)
  let entities =
    Array.init cfg.n_classes (fun _k ->
        Array.init cfg.n_entities (fun _e ->
            {
              values =
                Array.init cfg.n_pred_attrs (fun _ -> Rng.int rng ~bound:cfg.domain);
              next_entity = Rng.int rng ~bound:cfg.n_entities;
              dbs = [];
            }))
  in
  (* Hosting: which databases hold a constituent of each class. *)
  let hosting =
    Array.init cfg.n_classes (fun _k ->
        let dbs =
          List.filter
            (fun _ -> Rng.bool rng ~p:cfg.p_host)
            (List.init cfg.n_db (fun i -> i))
        in
        match dbs with [] -> [ Rng.int rng ~bound:cfg.n_db ] | dbs -> dbs)
  in
  (* Entity placement: home database plus extra copies. *)
  Array.iteri
    (fun k class_entities ->
      Array.iter
        (fun e ->
          let hosts = hosting.(k) in
          let home = Rng.pick rng hosts in
          let extras =
            List.filter (fun d -> d <> home && Rng.bool rng ~p:cfg.p_copy) hosts
          in
          e.dbs <- home :: extras)
        class_entities)
    entities;
  (* Per-database constituent schemas: which attributes survive. *)
  let attr_present =
    (* attr_present.(k).(i) = (pred attr j present?[], next present?) *)
    Array.init cfg.n_classes (fun k ->
        Array.init cfg.n_db (fun i ->
            if not (List.mem i hosting.(k)) then ([||], false)
            else
              let preds =
                Array.init cfg.n_pred_attrs (fun _ ->
                    Rng.bool rng ~p:cfg.p_attr_present)
              in
              let has_next =
                k < cfg.n_classes - 1 && Rng.bool rng ~p:cfg.p_attr_present
              in
              (preds, has_next)))
  in
  (* Build each database: schema, then objects from the deepest class up so
     references always point to existing objects. *)
  let databases =
    List.init cfg.n_db (fun i ->
        let class_defs =
          List.filter_map
            (fun k ->
              if not (List.mem i hosting.(k)) then None
              else
                let preds, has_next = attr_present.(k).(i) in
                let attrs =
                  ({ Schema.aname = "key"; atype = Schema.Prim Schema.P_int }
                  :: List.filter_map
                       (fun j ->
                         if preds.(j) then
                           Some
                             {
                               Schema.aname = pred_attr j;
                               atype = Schema.Prim Schema.P_int;
                             }
                         else None)
                       (List.init cfg.n_pred_attrs (fun j -> j)))
                  @
                  if has_next then
                    [
                      {
                        Schema.aname = "next";
                        atype = Schema.Complex (class_name (k + 1));
                      };
                    ]
                  else []
                in
                Some { Schema.cname = class_name k; attrs })
            (List.init cfg.n_classes (fun k -> k))
        in
        (* A class whose [next] survives needs its domain class in the same
           schema even if this database hosts no constituent extent of it;
           drop [next] instead when the domain class is absent. *)
        let class_names = List.map (fun cd -> cd.Schema.cname) class_defs in
        let class_defs =
          List.map
            (fun cd ->
              {
                cd with
                Schema.attrs =
                  List.filter
                    (fun a ->
                      match a.Schema.atype with
                      | Schema.Prim _ -> true
                      | Schema.Complex c -> List.mem c class_names)
                    cd.Schema.attrs;
              })
            class_defs
        in
        Database.create ~name:(db_name i) ~schema:(Schema.create class_defs))
  in
  let dbs = Array.of_list databases in
  (* loids.(k).(e) for database i: the local copy, if any. *)
  let loids = Array.init cfg.n_classes (fun _ -> Array.make (cfg.n_db * cfg.n_entities) None) in
  let loid_slot i e = (i * cfg.n_entities) + e in
  for k = cfg.n_classes - 1 downto 0 do
    Array.iteri
      (fun e ent ->
        List.iter
          (fun i ->
            let db = dbs.(i) in
            let schema = Database.schema db in
            match Schema.find_class schema (class_name k) with
            | None -> ()
            | Some cd ->
              let fields =
                List.map
                  (fun (a : Schema.attr) ->
                    if String.equal a.Schema.aname "key" then Value.Int e
                    else
                      match a.Schema.atype with
                      | Schema.Prim _ ->
                        (* pred attr: the entity's shared value, possibly
                           nulled; with probability p_divergent this copy
                           records its own value instead (multi-valued
                           integration scenario) *)
                        let j = Scanf.sscanf a.Schema.aname "p%d" (fun j -> j) in
                        if Rng.bool rng ~p:cfg.p_null then Value.Null
                        else if Rng.bool rng ~p:cfg.p_divergent then
                          Value.Int (Rng.int rng ~bound:cfg.domain)
                        else Value.Int ent.values.(j)
                      | Schema.Complex _ -> (
                        if Rng.bool rng ~p:(cfg.p_null *. 0.5) then Value.Null
                        else
                          match
                            loids.(k + 1).(loid_slot i ent.next_entity)
                          with
                          | Some l -> Value.Ref l
                          | None -> Value.Null))
                  cd.Schema.attrs
              in
              let obj = Database.add db ~cls:(class_name k) fields in
              loids.(k).(loid_slot i e) <- Some (Dbobject.loid obj))
          ent.dbs)
      entities.(k)
  done;
  let named = List.mapi (fun i db -> (db_name i, db)) databases in
  let mapping =
    List.init cfg.n_classes (fun k ->
        (class_name k, List.map (fun i -> (db_name i, class_name k)) hosting.(k)))
  in
  let keys = List.init cfg.n_classes (fun k -> (class_name k, "key")) in
  Federation.create ~databases:named ~mapping ~keys

let random_pred rng cfg =
  let depth = Rng.int rng ~bound:cfg.n_classes in
  let path = List.init depth (fun _ -> "next") @ [ pred_attr (Rng.int rng ~bound:cfg.n_pred_attrs) ] in
  let op = Rng.pick rng [ Predicate.Eq; Predicate.Eq; Predicate.Le; Predicate.Ne ] in
  let operand = Value.Int (Rng.int rng ~bound:cfg.domain) in
  Predicate.make ~path ~op ~operand

let rec random_tree rng atoms =
  match atoms with
  | [] -> Cond.tt
  | [ a ] -> if Rng.bool rng ~p:0.2 then Cond.Not (Cond.Atom a) else Cond.Atom a
  | _ ->
    let n = List.length atoms in
    let split = 1 + Rng.int rng ~bound:(n - 1) in
    let left = List.filteri (fun idx _ -> idx < split) atoms in
    let right = List.filteri (fun idx _ -> idx >= split) atoms in
    let l = random_tree rng left and r = random_tree rng right in
    if Rng.bool rng ~p:0.5 then Cond.And [ l; r ] else Cond.Or [ l; r ]

let random_query rng cfg ~disjunctive =
  let n_preds = Rng.range rng ~lo:1 ~hi:3 in
  let atoms = List.init n_preds (fun _ -> random_pred rng cfg) in
  let where =
    if disjunctive then random_tree rng atoms
    else Cond.conj (List.map (fun a -> Cond.Atom a) atoms)
  in
  let target_depth = Rng.int rng ~bound:cfg.n_classes in
  let nested_target =
    List.init target_depth (fun _ -> "next")
    @ [ pred_attr (Rng.int rng ~bound:cfg.n_pred_attrs) ]
  in
  Ast.make ~range_class:(class_name 0)
    ~targets:[ [ "key" ]; nested_target ]
    ~where ()
