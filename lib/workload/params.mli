(** The database and query parameters of Table 2, and their sampling.

    A {!sample} is one concrete draw of the whole parameter table for one
    simulated global query: the number of component databases, the involved
    global classes (index 0 is the range/root class), and per class and per
    database the cardinalities, predicate splits and selectivities with the
    paper's derived formulas:

    {ul
    {- [R_ps^k = 0.45^sqrt(N_p^k)] — selectivity of the class's predicates}
    {- [R_iso  = 1 - 0.9^(N_db - 1)] — ratio of objects with isomers}
    {- [R_pps  = 0.45^sqrt(N_pa)] — selectivity of the local predicates}
    {- [R_m    = 1] when the constituent misses predicate attributes,
       uniform in [0, 0.2] otherwise}
    {- [R_as   = 0.55^sqrt(N_p - N_pa)] — assistant-check selectivity}
    {- [R_ss   = 0.6^sqrt(N_p - N_pa)] — signature selectivity}} *)

type ranges = {
  n_db : int;  (** number of component databases (default 3) *)
  n_c : int * int;  (** global classes involved (1..4) *)
  n_p : int * int;  (** predicates per class (0..3) *)
  n_o : int * int;  (** objects per constituent class (5000..6000) *)
  n_ta : int * int;  (** target attributes per class (0..2) *)
  r_r : float * float;  (** ratio of referenced objects (0.5..1) *)
  r_m_base : float * float;  (** null ratio when nothing is missing (0..0.2) *)
  ps_base : float;  (** 0.45 *)
  as_base : float;  (** 0.55 *)
  ss_base : float;  (** 0.6 *)
}

val default : ranges
(** Exactly the default settings of Table 2. *)

type class_at_db = {
  n_o : int;  (** objects in this constituent *)
  n_qa : int;  (** attributes involved in the subquery *)
  n_pa : int;  (** attributes involved in the local predicates *)
  n_ta : int;  (** target attributes *)
  r_pps : float;  (** local predicate selectivity *)
  r_m : float;  (** ratio of objects with missing data *)
  r_as : float;  (** assistant-check selectivity *)
  r_ss : float;  (** signature selectivity *)
}

type gclass = {
  n_p : int;  (** predicates on this class *)
  r_ps : float;
  r_r : float;
  r_iso : float;
  per_db : class_at_db array;  (** length [n_db] *)
}

type sample = {
  n_db : int;
  classes : gclass array;  (** length [n_c]; index 0 is the root class *)
}

val sample : Rng.t -> ranges -> sample
(** One draw. The root class always carries at least one predicate when any
    class does, mirroring the paper's queries whose range class anchors the
    predicates. *)

val total_predicates : sample -> int

val pp_ranges : Format.formatter -> ranges -> unit
