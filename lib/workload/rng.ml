(* SplitMix64 (Steele, Lea, Flood 2014). *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

let create ~seed = { state = mix (Int64.of_int seed) }

let split t = { state = next t }

let split_ix t ~i =
  if i < 0 then invalid_arg "Rng.split_ix: negative index";
  (* The state the [i+1]-th [split] child would receive, computed without
     advancing [t]: reads are pure, so concurrent derivations from one
     shared parent never race. *)
  { state = mix (Int64.add t.state (Int64.mul golden (Int64.of_int (i + 1)))) }

let int t ~bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Modulo bias is negligible for the small bounds used here. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

let range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.range: hi < lo";
  lo + int t ~bound:(hi - lo + 1)

let float t =
  (* 53 random bits into [0,1). *)
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits /. 9007199254740992.0

let frange t ~lo ~hi = lo +. (float t *. (hi -. lo))
let bool t ~p = float t < p

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t ~bound:(List.length l))
