(** Synthetic concrete federations.

    Generates component databases around a composition chain of global
    classes [K0 -> K1 -> ... -> K(n-1)] (each class holds a complex
    attribute [next] to its successor), with controlled:

    {ul
    {- schema heterogeneity — a hosted constituent drops each predicate
       attribute independently, creating missing attributes;}
    {- null values — present attributes are nulled per object with a
       configurable probability;}
    {- object isomerism — entities get copies in several databases; shared
       attribute values are drawn once per entity, so isomeric objects are
       consistent by default and integration is well-defined (the
       [p_divergent] knob injects disagreeing copies for the multi-valued
       extension);}
    {- reference structure — an object's [next] reference points to the
       local copy of its entity's successor when one exists, else null.}}

    Every entity carries a never-null integer [key], so isomerism
    identification reconstructs the generator's entity structure exactly.

    The module also generates random conjunctive or disjunctive queries over
    the chain, for property-based testing of the execution strategies. *)

open Msdq_fed
open Msdq_query

type config = {
  seed : int;
  n_db : int;
  n_classes : int;  (** chain length, >= 1 *)
  n_entities : int;  (** real-world entities per class *)
  n_pred_attrs : int;  (** integer predicate attributes per class *)
  domain : int;  (** predicate values drawn from [0, domain) *)
  p_copy : float;  (** probability of an extra copy per non-home database *)
  p_host : float;  (** probability a database hosts a class *)
  p_attr_present : float;  (** probability a hosted class keeps an attribute *)
  p_null : float;  (** probability a present value is null *)
  p_divergent : float;
      (** probability a copy records its own value for a predicate attribute
          instead of the entity's shared value — produces the disagreeing
          isomeric values that multi-valued integration (extension) turns
          into value sets. Default 0: fully consistent federations. *)
}

val default : config
(** A small federation suitable for tests: 3 databases, a 3-class chain,
    24 entities per class. *)

val generate : config -> Federation.t
(** Deterministic in [config.seed]. *)

val random_query : Rng.t -> config -> disjunctive:bool -> Ast.t
(** A query over the generated schema: 1–3 predicates on random chain
    depths, one target on the root. With [disjunctive], the predicates are
    combined with a random and/or/not tree instead of a conjunction. *)
