module Rng = Msdq_workload.Rng

let map_seeded pool ~rng ~f arr =
  Pool.map_array pool ~f:(fun i x -> f (Rng.split_ix rng ~i) i x) arr

let tabulate_seeded pool ~rng ~n ~f =
  if n < 0 then invalid_arg "Par.tabulate_seeded: negative n";
  Pool.map_array pool ~f:(fun i () -> f (Rng.split_ix rng ~i) i) (Array.make n ())
