type t = {
  size : int;
  mutex : Mutex.t;
  todo : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable shut : bool;
  mutable workers : unit Domain.t list;
}

let jobs t = t.size

let worker t () =
  let rec take () =
    (* Under [t.mutex]. Drain the queue even when shutting down, so
       [shutdown] never abandons a batch mid-flight. *)
    match Queue.take_opt t.queue with
    | Some job -> Some job
    | None ->
      if t.shut then None
      else begin
        Condition.wait t.todo t.mutex;
        take ()
      end
  in
  let rec loop () =
    Mutex.lock t.mutex;
    let job = take () in
    Mutex.unlock t.mutex;
    match job with
    | None -> ()
    | Some job ->
      (* Batch runners catch their own exceptions; this is a backstop so a
         worker can never die and strand the pool. *)
      (try job () with _ -> ());
      loop ()
  in
  loop ()

let create ?jobs () =
  let size =
    match jobs with
    | None -> Domain.recommended_domain_count ()
    | Some j when j >= 1 -> j
    | Some j -> invalid_arg (Printf.sprintf "Pool.create: jobs %d < 1" j)
  in
  let t =
    {
      size;
      mutex = Mutex.create ();
      todo = Condition.create ();
      queue = Queue.create ();
      shut = false;
      workers = [];
    }
  in
  t.workers <- List.init (size - 1) (fun _ -> Domain.spawn (worker t));
  t

let submit t job =
  Mutex.lock t.mutex;
  Queue.add job t.queue;
  Condition.signal t.todo;
  Mutex.unlock t.mutex

let shutdown t =
  Mutex.lock t.mutex;
  let ws = t.workers in
  t.workers <- [];
  t.shut <- true;
  Condition.broadcast t.todo;
  Mutex.unlock t.mutex;
  List.iter Domain.join ws

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* One batch: chunks are claimed from [next]; the first failure (lowest
   chunk index wins) aborts further claims and is re-raised by the caller
   once every chunk is accounted for.

   Completion counts {e chunks}, never runner jobs: a queued helper that no
   worker ever picks up (every worker blocked in a batch of its own — the
   nested case) must not block the caller. Every claimed chunk is claimed by
   a runner already executing on some domain, and the caller's own pull loop
   claims whatever is left, so [finished = nchunks] is always reached. A
   stale helper that runs after the batch is done claims nothing and
   retires. *)
type batch = {
  nchunks : int;
  next : int Atomic.t;
  aborted : bool Atomic.t;
  bmutex : Mutex.t;
  done_ : Condition.t;
  mutable failed : (int * exn * Printexc.raw_backtrace) option;
  mutable finished : int;
}

let run_batch t ~nchunks ~run_chunk =
  let b =
    {
      nchunks;
      next = Atomic.make 0;
      aborted = Atomic.make false;
      bmutex = Mutex.create ();
      done_ = Condition.create ();
      failed = None;
      finished = 0;
    }
  in
  let rec pull () =
    let ci = Atomic.fetch_and_add b.next 1 in
    if ci < b.nchunks then begin
      (if not (Atomic.get b.aborted) then
         try run_chunk ci
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           Atomic.set b.aborted true;
           Mutex.lock b.bmutex;
           (match b.failed with
           | Some (c0, _, _) when c0 <= ci -> ()
           | _ -> b.failed <- Some (ci, e, bt));
           Mutex.unlock b.bmutex);
      Mutex.lock b.bmutex;
      b.finished <- b.finished + 1;
      if b.finished = b.nchunks then Condition.broadcast b.done_;
      Mutex.unlock b.bmutex;
      pull ()
    end
  in
  let helpers = min (t.size - 1) (max 0 (nchunks - 1)) in
  for _ = 1 to helpers do
    submit t pull
  done;
  pull ();
  Mutex.lock b.bmutex;
  while b.finished < b.nchunks do
    Condition.wait b.done_ b.bmutex
  done;
  let failed = b.failed in
  Mutex.unlock b.bmutex;
  match failed with
  | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let map_array t ~f arr =
  let n = Array.length arr in
  if t.shut then invalid_arg "Pool.map_array: pool has been shut down";
  if n = 0 then [||]
  else if t.size = 1 || n = 1 then Array.mapi f arr
  else begin
    let results = Array.make n None in
    let chunk = max 1 (n / (t.size * 4)) in
    let nchunks = (n + chunk - 1) / chunk in
    let run_chunk ci =
      let lo = ci * chunk in
      let hi = min n (lo + chunk) - 1 in
      for i = lo to hi do
        results.(i) <- Some (f i arr.(i))
      done
    in
    run_batch t ~nchunks ~run_chunk;
    Array.map (function Some v -> v | None -> assert false) results
  end
