(** Deterministic seeded parallel mapping.

    {!map_seeded} is the bridge between the {!Pool} (which guarantees
    schedule-independent {e placement} of results) and
    {!Msdq_workload.Rng.split_ix} (which guarantees schedule-independent
    {e randomness}): task [i] always draws from the same stream, so the
    output is bit-identical for any worker count — [jobs = 1] included. *)

val map_seeded :
  Pool.t ->
  rng:Msdq_workload.Rng.t ->
  f:(Msdq_workload.Rng.t -> int -> 'a -> 'b) ->
  'a array ->
  'b array
(** [map_seeded pool ~rng ~f arr] maps [f child i arr.(i)] over the array on
    the pool, where [child = Rng.split_ix rng ~i] — a private stream per
    task, derived without advancing [rng]. *)

val tabulate_seeded :
  Pool.t ->
  rng:Msdq_workload.Rng.t ->
  n:int ->
  f:(Msdq_workload.Rng.t -> int -> 'b) ->
  'b array
(** [tabulate_seeded pool ~rng ~n ~f] is [map_seeded] over the indices
    [0..n-1] with no input payload: [f child i] per index. [n] must be
    non-negative. *)
