(** A fixed-size domain pool with chunked task stealing.

    The pool owns [jobs - 1] worker domains (the caller's domain is the
    remaining worker: it always participates in its own batches, so a batch
    completes even when every worker is busy elsewhere — which also makes
    nested {!map_array} calls deadlock-free). Work arrives as index ranges:
    {!map_array} cuts its input into chunks and workers steal the next chunk
    from a shared atomic cursor until the batch is drained.

    Determinism: results land in an array slot chosen by input index, so the
    output never depends on worker count or scheduling. Anything
    schedule-dependent (progress meters, logs) is the caller's business.

    This module uses only the standard library ([Domain], [Mutex],
    [Condition], [Atomic]); it knows nothing about the rest of the repo. *)

type t

val create : ?jobs:int -> unit -> t
(** [create ()] sizes the pool to [Domain.recommended_domain_count ()];
    [~jobs] overrides it. [jobs = 1] spawns no domains and makes every
    {!map_array} run sequentially in the caller. Raises [Invalid_argument]
    when [jobs < 1]. *)

val jobs : t -> int
(** Total parallelism: worker domains plus the participating caller. *)

val map_array : t -> f:(int -> 'a -> 'b) -> 'a array -> 'b array
(** [map_array t ~f arr] is [Array.mapi f arr], computed on the pool.
    Chunks are sized to roughly four per worker so stragglers rebalance.

    If one or more applications of [f] raise, the batch stops pulling new
    chunks and the exception from the lowest-indexed failing chunk that ran
    is re-raised in the caller with its backtrace. Raises
    [Invalid_argument] if the pool has been shut down. *)

val shutdown : t -> unit
(** Waits for queued work to drain, then joins every worker domain.
    Idempotent: a second call (even from another domain) returns
    immediately. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] on a fresh pool and shuts it down afterwards,
    whether [f] returns or raises. *)
