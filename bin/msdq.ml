(* msdq — command-line interface to the library.

   Subcommands:
     demo        the paper's running example (DB1/DB2/DB3, query Q1)
     query       run a SQL/X query against the demo or a synthetic federation
     experiment  regenerate the paper's figures with the parametric simulator
     serve       run a multi-query workload through the caching/batching engine
     metrics     expose a telemetry-enabled workload as OpenMetrics text
     params      print the Table 1 / Table 2 settings
     generate    summarize a synthetic federation
     plan        print the optimizer's cost-ranked strategy comparison
     validate    cross-check the strategies on random federations *)

open Cmdliner
open Msdq_fed
open Msdq_query
open Msdq_exec
open Msdq_workload
open Msdq_exp
module Planner = Msdq_opt.Planner

let setup_logs level =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level level

let verbosity =
  let env = Cmd.Env.info "MSDQ_VERBOSITY" in
  Term.(const setup_logs $ Logs_cli.level ~env ())

(* Prepends log setup (-v / -vv / --verbosity) to a command's term. *)
let with_logs term = Term.(const (fun () result -> result) $ verbosity $ term)

let strategy_conv =
  let parse s =
    match Strategy.of_string s with
    | Some st -> Ok st
    | None -> Error (`Msg (Printf.sprintf "unknown strategy %S (CA|BL|PL|BLS|PLS|LO|CF)" s))
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (Strategy.to_string s))

let strategy_arg =
  Arg.(
    value
    & opt (some strategy_conv) None
    & info [ "s"; "strategy" ] ~docv:"STRATEGY"
        ~doc:"Execution strategy: CA, BL, PL, BLS, PLS, LO or CF. Default: all of them.")

(* Serve accepts AUTO on top of the fixed strategies; the error message
   lists the full accepted set (Strategy.selection_of_string). *)
let selection_conv =
  let parse s =
    match Strategy.selection_of_string s with
    | Ok sel -> Ok sel
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv
    ( parse,
      fun ppf sel ->
        Format.pp_print_string ppf (Strategy.selection_to_string sel) )

let multi_arg =
  Arg.(
    value & flag
    & info [ "multi-valued" ]
        ~doc:"Integrate disagreeing isomeric values into value sets with               existential semantics (extension).")

let gantt_arg =
  Arg.(
    value & flag
    & info [ "gantt" ] ~doc:"Print an ASCII Gantt chart of each strategy's task schedule.")

let deep_arg =
  Arg.(
    value & flag
    & info [ "deep" ] ~doc:"Enable deep certification (extension) for localized strategies.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let samples_arg =
  Arg.(
    value & opt int 500
    & info [ "samples" ]
        ~doc:"Parameter draws per configuration (the paper uses 500).")

let write_json path json =
  match open_out path with
  | exception Sys_error msg ->
    Fmt.epr "cannot write %s: %s@." path msg;
    exit 1
  | oc ->
    output_string oc (Msdq_obs.Json.to_string ~indent:2 json);
    output_char oc '\n';
    close_out oc

let run_strategies fed analysis ~strategies ~deep ~multi ~gantt ~json
    ~telemetry ~explain ~critical_path ~trace_out =
  let options =
    {
      Strategy.default_options with
      Strategy.deep_certify = deep;
      multi_valued = multi;
      telemetry;
    }
  in
  let runs =
    List.map (fun s -> Strategy.run ~options s fed analysis) strategies
  in
  if not json then
    List.iter2
      (fun s (answer, metrics) ->
        Format.printf "@.--- %s ---@.%a@.%a@." (Strategy.to_string s) Answer.pp
          answer Strategy.pp_metrics metrics;
        Format.printf "@.%a@." Run_report.pp_utilization metrics;
        if explain then Format.printf "@.%a@." Run_report.pp_explain answer;
        if critical_path then
          Format.printf "@.%a@." Msdq_telemetry.Critical_path.pp
            (Msdq_telemetry.Critical_path.analyze
               (Msdq_simkit.Trace.entries metrics.Strategy.trace));
        if gantt then
          Format.printf "@.%a@.%a@."
            (Msdq_simkit.Gantt.pp ~width:72)
            metrics.Strategy.trace Msdq_simkit.Gantt.pp_legend
            metrics.Strategy.trace)
      strategies runs;
  (match trace_out with
  | None -> ()
  | Some path ->
    write_json path (Run_report.chrome_trace (List.map snd runs));
    if not json then Format.printf "wrote %s@." path);
  runs

let data_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "data" ] ~docv:"FILE"
        ~doc:"Load the federation from FILE (see the Loader format) instead               of the built-in demo.")

let federation_of ~data ~synthetic ~seed =
  match data with
  | Some path -> (
    match Loader.load_file path with
    | Ok fed -> fed
    | Error msg ->
      Format.eprintf "cannot load %s: %s@." path msg;
      exit 1)
  | None ->
    if synthetic then Synth.generate { Synth.default with Synth.seed }
    else (Paper_example.build ()).Paper_example.federation

let analyze_or_exit fed src =
  match Parser.parse_result src with
  | Error msg ->
    Format.eprintf "parse error: %s@." msg;
    exit 1
  | Ok ast -> (
    let schema = Global_schema.schema (Federation.global_schema fed) in
    match Analysis.analyze schema ast with
    | exception Analysis.Error msg ->
      Format.eprintf "analysis error: %s@." msg;
      exit 1
    | analysis -> analysis)

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Emit a machine-readable JSON report on stdout instead of the               plain-text tables.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Write a Chrome trace_event file of every run to FILE (open it               in chrome://tracing or Perfetto).")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ] ~doc:"Report progress on stderr while computing.")

let telemetry_arg =
  Arg.(
    value & flag
    & info [ "telemetry" ]
        ~doc:
          "Record latency histograms per (strategy, site, resource, phase) \
           into the metrics registry. Off by default so existing JSON \
           reports stay byte-identical.")

let explain_arg =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "Print per-row provenance: why each maybe row is maybe (missing \
           data vs a degraded check) and which certain rows were certified \
           from cached verdicts.")

let critical_path_arg =
  Arg.(
    value & flag
    & info [ "critical-path" ]
        ~doc:
          "Analyze each run's task trace and print the critical path: the \
           causal chain of tasks and transfers whose durations and queue \
           waits sum to the response time, plus the dominant site, resource \
           and phase.")

let store_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"FILE"
        ~doc:
          "Persistent telemetry store: merge this run's observed statistics \
           (check latency, drop rate, cache hit rate, demotions per \
           strategy) into FILE with exponential decay, creating it if \
           missing.")

(* ---- demo ---- *)

let demo strategy deep multi gantt json telemetry explain critical_path
    trace_out =
  let ex = Paper_example.build () in
  let fed = ex.Paper_example.federation in
  if not json then begin
    Format.printf "The paper's running example: three school databases.@.@.";
    Format.printf "%a@." Federation.pp fed;
    Format.printf "@.Global schema (figure 2):@.%a@." Global_schema.pp
      (Federation.global_schema fed);
    Format.printf "@.GOid mapping tables (figure 5):@.%a@." Goid_table.pp
      (Federation.goids fed);
    Format.printf "@.Query Q1:@.  %s@." Paper_example.q1
  end;
  let analysis = analyze_or_exit fed Paper_example.q1 in
  let strategies = match strategy with Some s -> [ s ] | None -> Strategy.all in
  let runs =
    run_strategies fed analysis ~strategies ~deep ~multi ~gantt ~json
      ~telemetry ~explain ~critical_path ~trace_out
  in
  if json then
    print_endline
      (Msdq_obs.Json.to_string ~indent:2
         (Run_report.query_to_json ~query:Paper_example.q1 runs));
  `Ok ()

let demo_cmd =
  let term =
    with_logs
      Term.(
        ret
          (const demo $ strategy_arg $ deep_arg $ multi_arg $ gantt_arg
         $ json_arg $ telemetry_arg $ explain_arg $ critical_path_arg
         $ trace_out_arg))
  in
  Cmd.v (Cmd.info "demo" ~doc:"Run the paper's running example end to end.") term

(* ---- query ---- *)

let query strategy deep multi gantt json telemetry explain critical_path
    trace_out data synthetic seed sql =
  let fed = federation_of ~data ~synthetic ~seed in
  let analysis = analyze_or_exit fed sql in
  let strategies = match strategy with Some s -> [ s ] | None -> Strategy.all in
  if not json then Format.printf "query: %a@." Ast.pp analysis.Analysis.query;
  let runs =
    run_strategies fed analysis ~strategies ~deep ~multi ~gantt ~json
      ~telemetry ~explain ~critical_path ~trace_out
  in
  if json then
    print_endline
      (Msdq_obs.Json.to_string ~indent:2 (Run_report.query_to_json ~query:sql runs));
  `Ok ()

let query_cmd =
  let sql =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"QUERY" ~doc:"SQL/X query string.")
  in
  let synthetic =
    Arg.(
      value & flag
      & info [ "synthetic" ]
          ~doc:"Query a generated synthetic federation instead of the paper demo.")
  in
  let term =
    with_logs
      Term.(
        ret
          (const query $ strategy_arg $ deep_arg $ multi_arg $ gantt_arg
         $ json_arg $ telemetry_arg $ explain_arg $ critical_path_arg
         $ trace_out_arg $ data_arg $ synthetic $ seed_arg $ sql))
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Run a global query under one or all execution strategies.")
    term

(* ---- experiment ---- *)

let pp_fault_sweep ppf (sweep : Fault_sweep.sweep) =
  Format.fprintf ppf "@[<v>%s — %s@,(%d samples per level, seed %d)@,@,"
    sweep.Fault_sweep.id sweep.Fault_sweep.title sweep.Fault_sweep.samples
    sweep.Fault_sweep.seed;
  Format.fprintf ppf "%-16s" sweep.Fault_sweep.xlabel;
  Array.iter
    (fun a -> Format.fprintf ppf " %9s" (Printf.sprintf "%.2f" a))
    sweep.Fault_sweep.xs;
  Format.fprintf ppf "@,";
  List.iter
    (fun (ser : Fault_sweep.series) ->
      Format.fprintf ppf "%-16s" (ser.Fault_sweep.label ^ " recall");
      Array.iter (fun r -> Format.fprintf ppf " %9.3f" r) ser.Fault_sweep.recalls;
      Format.fprintf ppf "@,%-16s" (ser.Fault_sweep.label ^ " response");
      Array.iter
        (fun r -> Format.fprintf ppf " %8.4fs" r)
        ser.Fault_sweep.responses;
      Format.fprintf ppf "@,")
    sweep.Fault_sweep.series;
  Format.fprintf ppf "@]"

let fault_sweep_csv (sweep : Fault_sweep.sweep) =
  let b = Buffer.create 256 in
  Buffer.add_string b "availability";
  List.iter
    (fun (ser : Fault_sweep.series) ->
      Buffer.add_string b
        (Printf.sprintf ",%s_recall,%s_response_s" ser.Fault_sweep.label
           ser.Fault_sweep.label))
    sweep.Fault_sweep.series;
  Buffer.add_char b '\n';
  Array.iteri
    (fun i a ->
      Buffer.add_string b (Printf.sprintf "%g" a);
      List.iter
        (fun (ser : Fault_sweep.series) ->
          Buffer.add_string b
            (Printf.sprintf ",%g,%g"
               ser.Fault_sweep.recalls.(i)
               ser.Fault_sweep.responses.(i)))
        sweep.Fault_sweep.series;
      Buffer.add_char b '\n')
    sweep.Fault_sweep.xs;
  Buffer.contents b

let run_fault_sweep ?pool ~registry ?progress ~samples ~seed ~drop ~inflate
    ~csv ~json () =
  (* The figure sweeps default to the paper's 500 draws per point; a
     concrete-execution sweep at that scale would run six full strategy
     executions per draw, so its default is smaller. An explicit --samples
     below the figure default is honoured. *)
  let samples = if samples = 500 then 12 else samples in
  let drop = Option.value drop ~default:0.05 in
  let sweep =
    Fault_sweep.run ?pool ~registry ?progress ~samples ~seed ~drop ~inflate ()
  in
  if not json then Format.printf "%a@." pp_fault_sweep sweep;
  (match csv with
  | None -> ()
  | Some dir ->
    let path = Filename.concat dir (sweep.Fault_sweep.id ^ ".csv") in
    let oc = open_out path in
    output_string oc (fault_sweep_csv sweep);
    close_out oc;
    if not json then Format.printf "wrote %s@." path);
  if json then begin
    let doc =
      Msdq_obs.Json.Obj
        [
          ("fault_sweep", Run_report.fault_sweep_to_json sweep);
          ("registry", Msdq_obs.Metrics.to_json registry);
        ]
    in
    print_endline (Msdq_obs.Json.to_string ~indent:2 doc)
  end;
  `Ok ()

let pp_recovery_sweep ppf (sweep : Fault_sweep.recovery_sweep) =
  Format.fprintf ppf "@[<v>%s — %s@,(%d samples per level, seed %d)@,@,"
    sweep.Fault_sweep.rid sweep.Fault_sweep.rtitle sweep.Fault_sweep.rsamples
    sweep.Fault_sweep.rseed;
  Format.fprintf ppf "%-20s" sweep.Fault_sweep.rxlabel;
  Array.iter
    (fun a -> Format.fprintf ppf " %9s" (Printf.sprintf "%.2f" a))
    sweep.Fault_sweep.rxs;
  Format.fprintf ppf "@,";
  List.iter
    (fun (ser : Fault_sweep.rseries) ->
      Format.fprintf ppf "%-20s" (ser.Fault_sweep.r_label ^ " recall");
      Array.iter
        (fun r -> Format.fprintf ppf " %9.3f" r)
        ser.Fault_sweep.r_recalls;
      Format.fprintf ppf "@,%-20s" (ser.Fault_sweep.r_label ^ " demoted");
      Array.iter
        (fun d -> Format.fprintf ppf " %9.2f" d)
        ser.Fault_sweep.r_demoted;
      Format.fprintf ppf "@,")
    sweep.Fault_sweep.rseries;
  Format.fprintf ppf "@]"

let recovery_sweep_csv (sweep : Fault_sweep.recovery_sweep) =
  let b = Buffer.create 256 in
  Buffer.add_string b "availability";
  List.iter
    (fun (ser : Fault_sweep.rseries) ->
      Buffer.add_string b
        (Printf.sprintf ",%s_recall,%s_demoted,%s_response_s"
           ser.Fault_sweep.r_label ser.Fault_sweep.r_label
           ser.Fault_sweep.r_label))
    sweep.Fault_sweep.rseries;
  Buffer.add_char b '\n';
  Array.iteri
    (fun i a ->
      Buffer.add_string b (Printf.sprintf "%g" a);
      List.iter
        (fun (ser : Fault_sweep.rseries) ->
          Buffer.add_string b
            (Printf.sprintf ",%g,%g,%g"
               ser.Fault_sweep.r_recalls.(i)
               ser.Fault_sweep.r_demoted.(i)
               ser.Fault_sweep.r_responses.(i)))
        sweep.Fault_sweep.rseries;
      Buffer.add_char b '\n')
    sweep.Fault_sweep.rxs;
  Buffer.contents b

let run_recovery_sweep ?pool ~registry ?progress ~samples ~seed ~drop ~inflate
    ~csv ~json () =
  (* Nine series of full strategy executions per draw: the default sample
     count is smaller still than the fault sweep's. *)
  let samples = if samples = 500 then 8 else samples in
  let drop = Option.value drop ~default:0.2 in
  let sweep =
    Fault_sweep.run_recovery ?pool ~registry ?progress ~samples ~seed ~drop
      ~inflate ()
  in
  if not json then Format.printf "%a@." pp_recovery_sweep sweep;
  (match csv with
  | None -> ()
  | Some dir ->
    let path = Filename.concat dir (sweep.Fault_sweep.rid ^ ".csv") in
    let oc = open_out path in
    output_string oc (recovery_sweep_csv sweep);
    close_out oc;
    if not json then Format.printf "wrote %s@." path);
  if json then begin
    let doc =
      Msdq_obs.Json.Obj
        [
          ("recovery_sweep", Run_report.recovery_sweep_to_json sweep);
          ("registry", Msdq_obs.Metrics.to_json registry);
        ]
    in
    print_endline (Msdq_obs.Json.to_string ~indent:2 doc)
  end;
  `Ok ()

let pp_auto_sweep ppf (a : Auto_sweep.outcome) =
  Format.fprintf ppf "%s — %s@.@." a.Auto_sweep.id a.Auto_sweep.title;
  Format.fprintf ppf "%d queries (%d distinct), seed %d, %.0fms arrival spacing@.@."
    a.Auto_sweep.queries a.Auto_sweep.distinct a.Auto_sweep.seed
    (a.Auto_sweep.spacing_us /. 1e3);
  Format.fprintf ppf "%-8s %12s@." "strategy" "makespan";
  List.iter
    (fun (f : Auto_sweep.fixed_run) ->
      Format.fprintf ppf "%-8s %10.2fms@."
        (Strategy.to_string f.Auto_sweep.f_strategy)
        (f.Auto_sweep.f_makespan_s *. 1e3))
    a.Auto_sweep.fixed;
  Format.fprintf ppf "%-8s %10.2fms@." "AUTO"
    (a.Auto_sweep.auto_makespan_s *. 1e3);
  Format.fprintf ppf "@.decisions:";
  List.iter
    (fun (s, n) -> Format.fprintf ppf " %s=%d" s n)
    a.Auto_sweep.decisions;
  Format.fprintf ppf "  switches=%d@." a.Auto_sweep.switches;
  Format.fprintf ppf "estimator rank matches: %d/%d (%.0f%%)@."
    a.Auto_sweep.rank_matches a.Auto_sweep.distinct
    (a.Auto_sweep.rank_match_rate *. 100.0)

let run_auto_sweep ~registry ?progress ~seed ~json () =
  (* The sweep is a handful of serve runs on one fixed-size federation; it
     needs no domain pool and ignores --samples. *)
  let a = Auto_sweep.run ~registry ?progress ~seed () in
  if not json then Format.printf "%a@." pp_auto_sweep a
  else begin
    let doc =
      Msdq_obs.Json.Obj
        [
          ("auto_sweep", Run_report.auto_sweep_to_json a);
          ("registry", Msdq_obs.Metrics.to_json registry);
        ]
    in
    print_endline (Msdq_obs.Json.to_string ~indent:2 doc)
  end;
  `Ok ()

let pp_overload_sweep ppf (o : Overload_sweep.outcome) =
  Format.fprintf ppf "%s — %s@.@." o.Overload_sweep.id o.Overload_sweep.title;
  Format.fprintf ppf
    "%d queries per cell, seed %d; capacity (solo response) %.2fms, deadline \
     %.2fms, queue depth %d@.@."
    o.Overload_sweep.queries o.Overload_sweep.seed
    o.Overload_sweep.solo_response_ms o.Overload_sweep.deadline_ms
    o.Overload_sweep.queue_limit;
  Format.fprintf ppf "%-14s %5s %8s %5s %9s %5s %9s %9s %8s@." "policy" "load"
    "admitted" "shed" "goodput" "hit" "p50" "p99" "abandon";
  List.iter
    (fun (pt : Overload_sweep.point) ->
      Format.fprintf ppf
        "%-14s %4.1fx %5d/%-2d %5d %7.1f/s %5.2f %7.2fms %7.2fms %8d@."
        pt.Overload_sweep.pt_policy pt.Overload_sweep.pt_multiplier
        pt.Overload_sweep.pt_admitted pt.Overload_sweep.pt_offered
        pt.Overload_sweep.pt_shed pt.Overload_sweep.pt_goodput
        pt.Overload_sweep.pt_hit_rate pt.Overload_sweep.pt_p50_ms
        pt.Overload_sweep.pt_p99_ms pt.Overload_sweep.pt_abandoned_checks)
    o.Overload_sweep.points;
  Format.fprintf ppf
    "@.at-capacity p99 %.2fms; rejecting policies hold p99 within %.2fms at \
     every overloaded point@."
    o.Overload_sweep.cap_p99_ms
    (2.0 *. o.Overload_sweep.cap_p99_ms)

let run_overload_sweep ?pool ~registry ?progress ~seed ~json () =
  let o = Overload_sweep.run ?pool ~registry ?progress ~seed () in
  if not json then Format.printf "%a@." pp_overload_sweep o
  else begin
    let doc =
      Msdq_obs.Json.Obj
        [
          ("overload_sweep", Run_report.overload_sweep_to_json o);
          ("registry", Msdq_obs.Metrics.to_json registry);
        ]
    in
    print_endline (Msdq_obs.Json.to_string ~indent:2 doc)
  end;
  `Ok ()

let pp_gray_sweep ppf (o : Gray_sweep.outcome) =
  Format.fprintf ppf "%s — %s@.@." o.Gray_sweep.id o.Gray_sweep.title;
  Format.fprintf ppf
    "%d queries per cell, seed %d; static timeout %.2fms, baseline drop \
     %.2f@.@."
    o.Gray_sweep.queries o.Gray_sweep.seed o.Gray_sweep.static_timeout_ms
    o.Gray_sweep.drop;
  Format.fprintf ppf "%-9s %-9s %-7s %8s %6s %9s %9s %5s@." "policy" "kind"
    "sev" "demoted" "aband" "mean" "p99" "gray";
  List.iter
    (fun (pt : Gray_sweep.point) ->
      Format.fprintf ppf "%-9s %-9s %-7s %8d %6d %7.2fms %7.2fms %5d@."
        pt.Gray_sweep.pt_policy pt.Gray_sweep.pt_kind pt.Gray_sweep.pt_severity
        pt.Gray_sweep.pt_demoted_rows pt.Gray_sweep.pt_abandoned_checks
        pt.Gray_sweep.pt_mean_ms pt.Gray_sweep.pt_p99_ms
        pt.Gray_sweep.pt_gray_sites)
    o.Gray_sweep.points;
  Format.fprintf ppf
    "@.win condition: adaptive demotes no more rows than static on every \
     cell and cuts mean response on the slowdown cells by at least %.0f%%@."
    (100.0 *. Gray_sweep.response_margin)

let run_gray_sweep ?pool ~registry ?progress ~seed ~json () =
  let o = Gray_sweep.run ?pool ~registry ?progress ~seed () in
  if not json then Format.printf "%a@." pp_gray_sweep o
  else begin
    let doc =
      Msdq_obs.Json.Obj
        [
          ("gray_sweep", Run_report.gray_sweep_to_json o);
          ("registry", Msdq_obs.Metrics.to_json registry);
        ]
    in
    print_endline (Msdq_obs.Json.to_string ~indent:2 doc)
  end;
  `Ok ()

let experiment which fault_sweep recovery_sweep auto_sweep overload_sweep
    gray_sweep samples seed jobs drop inflate csv chart json progress =
  let registry = Msdq_obs.Metrics.create () in
  let progress =
    if progress then
      Some
        (fun ~figure ~completed ~total ->
          Format.eprintf "%s: %d/%d points\r%!" figure completed total;
          if completed = total then Format.eprintf "@.")
    else None
  in
  let jobs =
    if jobs = 0 then Domain.recommended_domain_count ()
    else if jobs >= 1 then jobs
    else begin
      Format.eprintf "--jobs must be >= 1 (or 0 for all cores)@.";
      exit 1
    end
  in
  let pool = if jobs > 1 then Some (Msdq_par.Pool.create ~jobs ()) else None in
  Fun.protect ~finally:(fun () -> Option.iter Msdq_par.Pool.shutdown pool)
  @@ fun () ->
  if fault_sweep || String.equal which "fault-sweep" then
    run_fault_sweep ?pool ~registry ?progress ~samples ~seed ~drop ~inflate
      ~csv ~json ()
  else if recovery_sweep || String.equal which "recovery-sweep" then
    run_recovery_sweep ?pool ~registry ?progress ~samples ~seed ~drop ~inflate
      ~csv ~json ()
  else if auto_sweep || String.equal which "auto-sweep" then
    run_auto_sweep ~registry ?progress ~seed ~json ()
  else if overload_sweep || String.equal which "overload-sweep" then
    run_overload_sweep ?pool ~registry ?progress ~seed ~json ()
  else if gray_sweep || String.equal which "gray-sweep" then
    run_gray_sweep ?pool ~registry ?progress ~seed ~json ()
  else
  let figures =
    match which with
    | "fig9" -> [ Figures.fig9 ?pool ~registry ?progress ~samples ~seed () ]
    | "fig10" -> [ Figures.fig10 ?pool ~registry ?progress ~samples ~seed () ]
    | "fig11" -> [ Figures.fig11 ?pool ~registry ?progress ~samples ~seed () ]
    | "ablation" | "ablation-signatures" ->
      [ Figures.ablation_signatures ?pool ~registry ?progress ~samples ~seed () ]
    | "ablation-checks" ->
      [ Figures.ablation_checks ?pool ~registry ?progress ~samples ~seed () ]
    | "ablation-semijoin" ->
      [ Figures.ablation_semijoin ?pool ~registry ?progress ~samples ~seed () ]
    | "all" -> Figures.all ?pool ~registry ?progress ~samples ~seed ()
    | other ->
      Format.eprintf
        "unknown experiment %S \
         (fig9|fig10|fig11|ablation-signatures|ablation-checks|ablation-semijoin|fault-sweep|recovery-sweep|auto-sweep|overload-sweep|gray-sweep|all)@."
        other;
      exit 1
  in
  List.iter
    (fun fig ->
      if not json then begin
        Format.printf "%a@.@." Report.pp_figure fig;
        if chart then begin
          Report.pp_ascii_chart Format.std_formatter fig ~metric:`Total;
          Format.printf "@."
        end;
        Format.printf "%a@." Report.pp_checks (Shapes.check fig)
      end;
      match csv with
      | None -> ()
      | Some dir ->
        let path = Filename.concat dir (fig.Figures.id ^ ".csv") in
        let oc = open_out path in
        output_string oc (Report.to_csv fig);
        close_out oc;
        if not json then Format.printf "wrote %s@." path)
    figures;
  if json then begin
    let doc = Run_report.figures_to_json figures in
    let doc =
      match doc with
      | Msdq_obs.Json.Obj fields ->
        Msdq_obs.Json.Obj
          (fields @ [ ("registry", Msdq_obs.Metrics.to_json registry) ])
      | other -> other
    in
    print_endline (Msdq_obs.Json.to_string ~indent:2 doc)
  end;
  `Ok ()

let experiment_cmd =
  let which =
    Arg.(
      value
      & pos 0 string "all"
      & info [] ~docv:"EXPERIMENT"
          ~doc:
            "fig9, fig10, fig11, ablation-signatures (alias: ablation), \
             ablation-checks, ablation-semijoin, fault-sweep, \
             recovery-sweep, auto-sweep, overload-sweep, gray-sweep or \
             all.")
  in
  let fault_sweep_flag =
    Arg.(
      value & flag
      & info [ "fault-sweep" ]
          ~doc:
            "Run the robustness sweep instead of the figures: the concrete \
             CA/BL/PL executors under random site crashes and lossy links, \
             reporting response time and certain-set recall per \
             (availability, drop, inflate) point against a hard-failing \
             baseline. Only availability is swept; the link knobs are fixed \
             across the grid at $(b,--drop) (default 0.05) and \
             $(b,--inflate) (default 1). Defaults to 12 samples per level; \
             $(b,--samples) overrides.")
  in
  let recovery_sweep_flag =
    Arg.(
      value & flag
      & info [ "recovery-sweep" ]
          ~doc:
            "Run the failover-recovery sweep instead of the figures: \
             retry-only vs failover vs failover+hedging on the same faulty \
             executions, reporting certain-set recall and mean demoted rows \
             per availability level for CA, BL and PL. The availability-1.0 \
             column keeps its lossy links ($(b,--drop), default 0.2 here) \
             instead of going fault-free. Defaults to 8 samples per level; \
             $(b,--samples) overrides.")
  in
  let auto_sweep_flag =
    Arg.(
      value & flag
      & info [ "auto-sweep" ]
          ~doc:
            "Run the adaptive-selection experiment instead of the figures: \
             one mixed workload served once per fixed candidate strategy \
             (CA, BL, PL) and once under the cost-based AUTO selector, \
             reporting makespans, per-strategy decision counts and the \
             estimator's rank-match rate. Uses $(b,--seed); \
             $(b,--samples) is ignored.")
  in
  let overload_sweep_flag =
    Arg.(
      value & flag
      & info [ "overload-sweep" ]
          ~doc:
            "Run the overload-robustness experiment instead of the figures: \
             one BL workload offered at 0.5x..3x the calibrated capacity, \
             served naively (unbounded queue, no deadline) and under each \
             shed policy with a bounded queue and a deadline budget, \
             reporting goodput, deadline-hit rate and p50/p99 of admitted \
             latency per (policy, load) cell. Uses $(b,--seed) and \
             $(b,--jobs); $(b,--samples) is ignored.")
  in
  let gray_sweep_flag =
    Arg.(
      value & flag
      & info [ "gray-sweep" ]
          ~doc:
            "Run the gray-failure tolerance experiment instead of the \
             figures: one BL workload served per (timeout policy, fault \
             kind, severity) cell — slowdown, jitter, flapping and one-way \
             partitions over a lossy link — comparing a conservative static \
             retransmission timeout against the telemetry-driven adaptive \
             one, reporting demoted rows, abandoned checks and mean/p99 \
             response per cell. Uses $(b,--seed) and $(b,--jobs); \
             $(b,--samples) is ignored.")
  in
  let drop =
    Arg.(
      value
      & opt (some float) None
      & info [ "drop" ] ~docv:"P"
          ~doc:
            "Loss probability of every site's incoming link in the sweeps \
             (default 0.05 for $(b,--fault-sweep), 0.2 for \
             $(b,--recovery-sweep)).")
  in
  let inflate =
    Arg.(
      value & opt float 1.0
      & info [ "inflate" ] ~docv:"F"
          ~doc:
            "Latency inflation factor of every site's incoming link in the \
             sweeps (default 1: no inflation).")
  in
  let csv =
    Arg.(
      value
      & opt (some dir) None
      & info [ "csv" ] ~docv:"DIR" ~doc:"Also write one CSV per figure into DIR.")
  in
  let chart =
    Arg.(value & flag & info [ "chart" ] ~doc:"Print rough ASCII charts.")
  in
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Domain-pool size for the sweeps: 0 = all cores (the default),               1 = sequential. Results are identical for every setting.")
  in
  let term =
    with_logs
      Term.(
        ret
          (const experiment $ which $ fault_sweep_flag $ recovery_sweep_flag
         $ auto_sweep_flag $ overload_sweep_flag $ gray_sweep_flag
         $ samples_arg $ seed_arg $ jobs $ drop $ inflate $ csv $ chart
         $ json_arg $ progress_arg))
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Regenerate the paper's figures with the parametric simulator.")
    term

(* ---- serve ---- *)

let pp_serve_sweep ppf (sweep : Serve_sweep.sweep) =
  Format.fprintf ppf
    "@[<v>%s — %s@,\
     (%d queries per workload, %d samples, seed %d; speedup = cold/warm \
     makespan)@,@,"
    sweep.Serve_sweep.id sweep.Serve_sweep.title sweep.Serve_sweep.queries
    sweep.Serve_sweep.samples sweep.Serve_sweep.seed;
  Format.fprintf ppf "%-18s" sweep.Serve_sweep.xlabel;
  Array.iter
    (fun kib -> Format.fprintf ppf " %10s" (Printf.sprintf "%gKiB" kib))
    sweep.Serve_sweep.xs;
  Format.fprintf ppf "@,";
  List.iter
    (fun (ser : Serve_sweep.series) ->
      Format.fprintf ppf "%-18s" (ser.Serve_sweep.label ^ " q/s");
      Array.iter
        (fun t -> Format.fprintf ppf " %10.2f" t)
        ser.Serve_sweep.throughputs;
      Format.fprintf ppf "@,%-18s" (ser.Serve_sweep.label ^ " speedup");
      Array.iter (fun s -> Format.fprintf ppf " %10.3f" s) ser.Serve_sweep.speedups;
      Format.fprintf ppf "@,")
    sweep.Serve_sweep.series;
  Format.fprintf ppf "@]"

let serve_outcome_to_json ~query cfg (out : Msdq_serve.Serve.outcome) =
  let module Serve = Msdq_serve.Serve in
  let module Lru = Msdq_serve.Lru in
  let module Json = Msdq_obs.Json in
  let time t = Json.Float (Msdq_simkit.Time.to_us t) in
  let cache (s : Lru.stats) =
    Json.Obj
      [
        ("hits", Json.Int s.Lru.hits);
        ("misses", Json.Int s.Lru.misses);
        ("evictions", Json.Int s.Lru.evictions);
        ("invalidations", Json.Int s.Lru.invalidations);
        ("entries", Json.Int s.Lru.entries);
        ("bytes", Json.Int s.Lru.bytes);
      ]
  in
  Json.Obj
    [
      ("query", Json.Str query);
      ("cache_bytes", Json.Int cfg.Serve.cache_bytes);
      ("window_us", Json.Float (Msdq_simkit.Time.to_us cfg.Serve.window));
      ( "reports",
        Json.Arr
          (List.map
             (fun (r : Serve.query_report) ->
               Json.Obj
                 [
                   ("index", Json.Int r.Serve.index);
                   ("strategy", Json.Str (Strategy.to_string r.Serve.strategy));
                   ("arrival_us", time r.Serve.arrival);
                   ("completed_us", time r.Serve.completed);
                   ("latency_us", time r.Serve.latency);
                   ("rows", Json.Int (Answer.size r.Serve.answer));
                   ( "certain",
                     Json.Int (List.length (Answer.certain r.Serve.answer)) );
                   ("maybe", Json.Int (List.length (Answer.maybe r.Serve.answer)));
                   ( "degraded",
                     Json.Int
                       (Msdq_odb.Oid.Goid.Set.cardinal
                          (Answer.degraded r.Serve.answer)) );
                   ( "cached",
                     Json.Int
                       (Msdq_odb.Oid.Goid.Set.cardinal
                          (Answer.cached r.Serve.answer)) );
                   ("extent_hits", Json.Int r.Serve.extent_hits);
                   ("verdict_hits", Json.Int r.Serve.verdict_hits);
                   ("deadline_demoted", Json.Int r.Serve.deadline_demoted);
                 ])
             out.Serve.reports) );
      ( "shed",
        Json.Arr
          (List.map
             (fun (sr : Serve.shed_report) ->
               Json.Obj
                 [
                   ("index", Json.Int sr.Serve.s_index);
                   ( "strategy",
                     Json.Str (Strategy.to_string sr.Serve.s_strategy) );
                   ("arrival_us", time sr.Serve.s_arrival);
                   ( "policy",
                     Json.Str (Serve.shed_policy_to_string sr.Serve.s_policy)
                   );
                 ])
             out.Serve.shed) );
      ("max_queue_depth", Json.Int out.Serve.max_queue_depth);
      ("makespan_us", time out.Serve.makespan);
      ("throughput_qps", Json.Float out.Serve.throughput);
      ("extent_cache", cache out.Serve.extent_cache);
      ("verdict_cache", cache out.Serve.verdict_cache);
      ("messages", Json.Int out.Serve.messages);
      ("coalesced_checks", Json.Int out.Serve.coalesced_checks);
      ("registry", Msdq_obs.Metrics.to_json out.Serve.registry);
    ]

(* One dashboard frame per query completion, replayed in arrival order. The
   engine reports exact per-query latencies, cache hits and arrival times;
   workload-global totals (lookups, messages) are only known at the end, so
   intermediate frames prorate them by completion fraction — the final frame
   is exact. *)
let dashboard_frames (out : Msdq_serve.Serve.outcome) =
  let module Serve = Msdq_serve.Serve in
  let module Lru = Msdq_serve.Lru in
  let module T = Msdq_simkit.Time in
  let reports =
    List.sort
      (fun (a : Serve.query_report) (b : Serve.query_report) ->
        compare (T.to_us a.Serve.completed) (T.to_us b.Serve.completed))
      out.Serve.reports
  in
  let total = List.length reports in
  let arrivals =
    List.map
      (fun (r : Serve.query_report) ->
        (Strategy.to_string r.Serve.strategy, T.to_us r.Serve.arrival))
      out.Serve.reports
  in
  let names = List.sort_uniq compare (List.map fst arrivals) in
  let ext_lookups =
    out.Serve.extent_cache.Lru.hits + out.Serve.extent_cache.Lru.misses
  in
  let ver_lookups =
    out.Serve.verdict_cache.Lru.hits + out.Serve.verdict_cache.Lru.misses
  in
  let gray_slow_legs =
    Msdq_obs.Metrics.total out.Serve.registry "msdq_gray_slow_legs_total"
  in
  let gray_fallbacks =
    Msdq_obs.Metrics.total out.Serve.registry "msdq_gray_fallbacks_total"
  in
  let done_ = ref [] in
  List.mapi
    (fun i (r : Serve.query_report) ->
      done_ := r :: !done_;
      let k = i + 1 in
      let now_us = T.to_us r.Serve.completed in
      let admitted name =
        List.length
          (List.filter
             (fun (s, a) -> (name = "" || String.equal s name) && a <= now_us)
             arrivals)
      in
      let completed_of name =
        List.length
          (List.filter
             (fun (q : Serve.query_report) ->
               String.equal (Strategy.to_string q.Serve.strategy) name)
             !done_)
      in
      let sum f = List.fold_left (fun acc q -> acc + f q) 0 !done_ in
      let scale n =
        if k = total then n
        else
          int_of_float
            (Float.round (float_of_int n *. float_of_int k /. float_of_int total))
      in
      let ehits = sum (fun (q : Serve.query_report) -> q.Serve.extent_hits) in
      let vhits = sum (fun (q : Serve.query_report) -> q.Serve.verdict_hits) in
      {
        Msdq_telemetry.Dashboard.now_us;
        admitted = admitted "";
        completed = k;
        total;
        extent_hits = ehits;
        extent_lookups = max ehits (scale ext_lookups);
        verdict_hits = vhits;
        verdict_lookups = max vhits (scale ver_lookups);
        breakers_open = 0;
        messages = scale out.Serve.messages;
        shed =
          (* sheds can arrive after the last admitted completion, so the
             final frame takes the full count *)
          (if k = total then List.length out.Serve.shed
           else
             List.length
               (List.filter
                  (fun (s : Serve.shed_report) ->
                    T.to_us s.Serve.s_arrival <= now_us)
                  out.Serve.shed));
        deadline_demotions =
          sum (fun (q : Serve.query_report) -> q.Serve.deadline_demoted);
        gray_slow_legs = scale gray_slow_legs;
        gray_fallbacks = scale gray_fallbacks;
        latency =
          Msdq_simkit.Stats.summarize
            (List.map
               (fun (q : Serve.query_report) -> T.to_us q.Serve.latency)
               !done_);
        per_strategy =
          List.map (fun name -> (name, admitted name, completed_of name)) names;
      })
    reports

let serve queries arrival cache_mb window_us deadline_ms queue_limit
    shed_policy strategy data synthetic seed sweep samples jobs drop inflate
    flap_ms adaptive json dashboard store trace_out sql =
  let module Serve = Msdq_serve.Serve in
  let module Lru = Msdq_serve.Lru in
  if sweep then begin
    let jobs =
      if jobs = 0 then Domain.recommended_domain_count ()
      else if jobs >= 1 then jobs
      else begin
        Format.eprintf "--jobs must be >= 1 (or 0 for all cores)@.";
        exit 1
      end
    in
    let pool = if jobs > 1 then Some (Msdq_par.Pool.create ~jobs ()) else None in
    Fun.protect ~finally:(fun () -> Option.iter Msdq_par.Pool.shutdown pool)
    @@ fun () ->
    let sweep = Serve_sweep.run ?pool ~samples ~seed () in
    if json then
      print_endline
        (Msdq_obs.Json.to_string ~indent:2 (Run_report.serve_sweep_to_json sweep))
    else Format.printf "%a@." pp_serve_sweep sweep;
    `Ok ()
  end
  else begin
    if queries < 1 then begin
      Format.eprintf "--queries must be >= 1@.";
      exit 1
    end;
    if arrival <= 0.0 || Float.is_nan arrival then begin
      Format.eprintf "--arrival must be a positive rate@.";
      exit 1
    end;
    if cache_mb < 0.0 || Float.is_nan cache_mb then begin
      Format.eprintf "--cache-mb must be >= 0@.";
      exit 1
    end;
    (match deadline_ms with
    | Some d when Float.is_nan d || d <= 0.0 || not (Float.is_finite d) ->
      Format.eprintf "--deadline must be a positive budget in milliseconds@.";
      exit 1
    | _ -> ());
    (match queue_limit with
    | Some q when q < 1 ->
      Format.eprintf "--queue-limit must be >= 1@.";
      exit 1
    | _ -> ());
    let shed_policy =
      match shed_policy with
      | None -> Msdq_serve.Serve.default_config.Serve.shed_policy
      | Some name -> (
        match Serve.shed_policy_of_string name with
        | Ok p -> p
        | Error msg ->
          Format.eprintf "--shed-policy: %s@." msg;
          exit 1)
    in
    let fed = federation_of ~data ~synthetic ~seed in
    let src = match sql with Some s -> s | None -> Paper_example.q1 in
    let analysis = analyze_or_exit fed src in
    let inter_us = 1e6 /. arrival in
    let arrival_of i = Msdq_simkit.Time.us (float_of_int i *. inter_us) in
    let telemetry = dashboard || store <> None in
    let fault =
      let module Fault = Msdq_fault.Fault in
      if drop = 0.0 && inflate = 1.0 && flap_ms = 0.0 then Fault.none
      else begin
        let sites =
          List.map
            (fun (db, _) -> Federation.site_of fed db)
            (Federation.databases fed)
        in
        let links =
          if drop > 0.0 || inflate <> 1.0 then
            List.map
              (fun s -> { Fault.dst = s; drop; inflate; jitter = 0.0 })
              sites
          else []
        in
        let flapping =
          if flap_ms > 0.0 then begin
            let horizon = float_of_int queries *. inter_us in
            let train =
              Fault.flap_train ~from:Msdq_simkit.Time.zero
                ~until:(Msdq_simkit.Time.us horizon)
                ~period:(Msdq_simkit.Time.ms flap_ms)
                ~duty:0.3
            in
            List.map (fun s -> { Fault.site = s; outages = train }) sites
          end
          else []
        in
        {
          Fault.seed;
          sites = flapping;
          links;
          slowdowns = [];
          partitions = [];
        }
      end
    in
    let retry =
      {
        Strategy.default_retry with
        Strategy.adaptive =
          (if adaptive then Some Strategy.default_adaptive else None);
      }
    in
    let cfg =
      {
        Serve.default_config with
        Serve.cache_bytes = int_of_float (cache_mb *. 1024.0 *. 1024.0);
        window = Msdq_simkit.Time.us window_us;
        options =
          { Strategy.default_options with Strategy.telemetry; fault; retry };
        deadline = Option.map (fun d -> Msdq_simkit.Time.ms d) deadline_ms;
        queue_limit;
        shed_policy;
      }
    in
    let out, auto_info =
      try
        match strategy with
        | Strategy.Fixed strategy ->
          let jobs_list =
            List.init queries (fun i ->
                { Serve.strategy; analysis; arrival = arrival_of i; deadline = None })
          in
          (Serve.run ~trace:(trace_out <> None) cfg fed jobs_list, None)
        | Strategy.Auto ->
          (* An existing --store file also feeds selection: observed
             per-strategy latencies blend into the model's estimates. *)
          let sel_store =
            match store with
            | Some path when Sys.file_exists path -> (
              match Msdq_telemetry.Store.load path with
              | Ok s -> Some s
              | Error msg ->
                Format.eprintf "cannot load %s: %s@." path msg;
                exit 1)
            | _ -> None
          in
          let a =
            Serve.run_auto ?store:sel_store ~trace:(trace_out <> None) cfg fed
              (List.init queries (fun i -> (analysis, arrival_of i)))
          in
          (a.Serve.auto, Some a)
      with Invalid_argument msg ->
        Format.eprintf "%s@." msg;
        exit 1
    in
    if json then begin
      let doc = serve_outcome_to_json ~query:src cfg out in
      let doc =
        match (auto_info, doc) with
        | Some a, Msdq_obs.Json.Obj fields ->
          Msdq_obs.Json.Obj
            (fields
            @ [
                ( "auto",
                  Msdq_obs.Json.Obj
                    [
                      ( "decisions",
                        Msdq_obs.Json.Arr
                          (List.map
                             (fun (d : Serve.auto_decision) ->
                               Msdq_obs.Json.Obj
                                 [
                                   ("index", Msdq_obs.Json.Int d.Serve.d_index);
                                   ( "preferred",
                                     Msdq_obs.Json.Str
                                       (Strategy.to_string d.Serve.d_preferred)
                                   );
                                   ( "chosen",
                                     Msdq_obs.Json.Str
                                       (Strategy.to_string d.Serve.d_chosen) );
                                   ( "switched",
                                     Msdq_obs.Json.Bool d.Serve.d_switched );
                                 ])
                             a.Serve.decisions) );
                      ("switches", Msdq_obs.Json.Int a.Serve.switches);
                    ] );
              ])
        | _, doc -> doc
      in
      print_endline (Msdq_obs.Json.to_string ~indent:2 doc)
    end
    else begin
      Format.printf
        "workload: %d x %s under %s, arrival %.1f q/s, cache %.1f MiB, window \
         %.0f us@.@."
        queries src
        (Strategy.selection_to_string strategy)
        arrival cache_mb window_us;
      Format.printf "%-3s %12s %12s %12s %7s %7s %7s %9s@." "#" "arrival"
        "completed" "latency" "xhits" "vhits" "cached" "degraded";
      List.iter
        (fun (r : Serve.query_report) ->
          Format.printf "%-3d %12s %12s %12s %7d %7d %7d %9d@." r.Serve.index
            (Format.asprintf "%a" Msdq_simkit.Time.pp r.Serve.arrival)
            (Format.asprintf "%a" Msdq_simkit.Time.pp r.Serve.completed)
            (Format.asprintf "%a" Msdq_simkit.Time.pp r.Serve.latency)
            r.Serve.extent_hits r.Serve.verdict_hits
            (Msdq_odb.Oid.Goid.Set.cardinal (Answer.cached r.Serve.answer))
            (Msdq_odb.Oid.Goid.Set.cardinal (Answer.degraded r.Serve.answer)))
        out.Serve.reports;
      let pp_cache name (s : Lru.stats) =
        Format.printf
          "%s cache: %d hits, %d misses, %d evictions, %d invalidations, %d \
           entries (%d bytes)@."
          name s.Lru.hits s.Lru.misses s.Lru.evictions s.Lru.invalidations
          s.Lru.entries s.Lru.bytes
      in
      Format.printf "@.makespan %a, throughput %.2f queries/simulated-second@."
        Msdq_simkit.Time.pp out.Serve.makespan out.Serve.throughput;
      pp_cache "extent" out.Serve.extent_cache;
      pp_cache "verdict" out.Serve.verdict_cache;
      Format.printf "%d serve-path messages, %d coalesced check requests@."
        out.Serve.messages out.Serve.coalesced_checks;
      let demoted =
        List.fold_left
          (fun acc (r : Serve.query_report) -> acc + r.Serve.deadline_demoted)
          0 out.Serve.reports
      in
      if out.Serve.shed <> [] || demoted > 0 || out.Serve.max_queue_depth > 0
      then begin
        Format.printf
          "overload: %d shed, %d rows demoted at the deadline, peak queue \
           depth %d@."
          (List.length out.Serve.shed)
          demoted out.Serve.max_queue_depth;
        List.iter
          (fun (sr : Serve.shed_report) ->
            Format.printf "  shed #%d (%s arrival %a, policy %s)@."
              sr.Serve.s_index
              (Strategy.to_string sr.Serve.s_strategy)
              Msdq_simkit.Time.pp sr.Serve.s_arrival
              (Serve.shed_policy_to_string sr.Serve.s_policy))
          out.Serve.shed
      end;
      match auto_info with
      | None -> ()
      | Some a ->
        let count s =
          List.length
            (List.filter
               (fun (d : Serve.auto_decision) -> d.Serve.d_chosen = s)
               a.Serve.decisions)
        in
        Format.printf "AUTO decisions:";
        List.iter
          (fun s -> Format.printf " %s=%d" (Strategy.to_string s) (count s))
          [ Strategy.Ca; Strategy.Bl; Strategy.Pl ];
        Format.printf ", strategy switches: %d@." a.Serve.switches
    end;
    if dashboard && not json then begin
      let frames = dashboard_frames out in
      let live = Unix.isatty Unix.stdout in
      let replay f =
        print_string Msdq_telemetry.Dashboard.clear;
        print_string (Msdq_telemetry.Dashboard.render f);
        flush stdout;
        Unix.sleepf 0.08
      in
      match frames with
      | [] -> ()
      | frames when live -> List.iter replay frames
      | frames ->
        (* not a terminal: print the final (exact) frame once *)
        print_string
          (Msdq_telemetry.Dashboard.render
             (List.nth frames (List.length frames - 1)))
    end;
    (match store with
    | None -> ()
    | Some path ->
      let fresh = Msdq_telemetry.Store.create () in
      Run_report.record_serve_stats ~store:fresh out;
      let merged =
        if Sys.file_exists path then
          match Msdq_telemetry.Store.load path with
          | Ok old -> Msdq_telemetry.Store.merge old fresh
          | Error msg ->
            Format.eprintf "cannot load %s: %s@." path msg;
            exit 1
        else fresh
      in
      (try Msdq_telemetry.Store.save merged path
       with Sys_error msg ->
         Format.eprintf "cannot write %s: %s@." path msg;
         exit 1);
      if not json then
        Format.printf "@.telemetry store %s (%d runs):@.%a@." path
          (Msdq_telemetry.Store.runs merged)
          Msdq_telemetry.Store.pp merged);
    (match trace_out with
    | None -> ()
    | Some path ->
      write_json path (Run_report.chrome_trace_of_entries out.Serve.trace);
      if not json then Format.printf "wrote %s@." path);
    `Ok ()
  end

let serve_cmd =
  let queries =
    Arg.(
      value & opt int 8
      & info [ "n"; "queries" ] ~docv:"N"
          ~doc:"Number of queries in the stream.")
  in
  let arrival =
    Arg.(
      value & opt float 50.0
      & info [ "arrival" ] ~docv:"RATE"
          ~doc:
            "Arrival rate in queries per simulated second; the stream is \
             evenly spaced at 1/RATE.")
  in
  let cache_mb =
    Arg.(
      value & opt float 4.0
      & info [ "cache-mb" ] ~docv:"MB"
          ~doc:
            "Capacity of each site's extent cache and of the global verdict \
             cache, in MiB. 0 disables caching (every query runs cold).")
  in
  let window =
    Arg.(
      value & opt float 0.0
      & info [ "window" ] ~docv:"US"
          ~doc:
            "Check-batching admission window in simulated microseconds: \
             check requests reaching the same target site within the window \
             coalesce into one message. 0 disables cross-query batching.")
  in
  let strategy =
    Arg.(
      value
      & opt selection_conv (Strategy.Fixed Strategy.Bl)
      & info [ "s"; "strategy" ] ~docv:"STRATEGY"
          ~doc:
            "Strategy for every query in the stream: CA, BL, PL, BLS, PLS, \
             LO (CF has no serve-path integration) or AUTO — the cost-based \
             optimizer picks per query, blending the model's estimates with \
             observed latencies from $(b,--store) when the store file \
             already exists. Default: BL.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"MS"
          ~doc:
            "Per-query deadline budget in simulated milliseconds. At \
             expiry outstanding check round trips are abandoned and their \
             rows demote to uncertified maybe with a Deadline reason; rows \
             already certified are returned as-is (anytime answers). \
             Default: unbounded.")
  in
  let queue_limit =
    Arg.(
      value
      & opt (some int) None
      & info [ "queue-limit" ] ~docv:"N"
          ~doc:
            "Admission-queue depth bound: an arrival finding N queries \
             queued or in service is handled by $(b,--shed-policy). \
             Default: unbounded.")
  in
  let shed_policy =
    Arg.(
      value
      & opt (some string) None
      & info [ "shed-policy" ] ~docv:"POLICY"
          ~doc:
            "What to do with an over-capacity arrival (with \
             $(b,--queue-limit)): $(b,reject-newest) sheds it, \
             $(b,reject-oldest) evicts the oldest still-queued query in its \
             favor, $(b,degrade) admits it but forces the cheapest \
             predicted strategy. Default: reject-newest.")
  in
  let sweep_flag =
    Arg.(
      value & flag
      & info [ "sweep" ]
          ~doc:
            "Run the throughput sweep instead of one workload: synthetic \
             repeated-query streams over cache capacities 0..4MiB and \
             admission windows 0/500us for CA, BL and PL, reporting \
             queries per simulated second and warm-over-cold makespan \
             speedup. $(b,--samples) workloads per cell (default 4).")
  in
  let samples =
    Arg.(
      value & opt int 4
      & info [ "samples" ] ~docv:"N"
          ~doc:"Workload draws per sweep cell (with $(b,--sweep)).")
  in
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Domain-pool size for $(b,--sweep): 0 = all cores (the default), \
             1 = sequential. Results are identical for every setting.")
  in
  let synthetic =
    Arg.(
      value & flag
      & info [ "synthetic" ]
          ~doc:
            "Serve against a generated synthetic federation (pass QUERY \
             explicitly; the demo query names demo classes).")
  in
  let sql =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"QUERY"
          ~doc:"SQL/X query repeated by the stream. Default: the demo's Q1.")
  in
  let serve_drop =
    Arg.(
      value & opt float 0.0
      & info [ "drop" ] ~docv:"P"
          ~doc:
            "Loss probability of every database site's incoming link \
             (default 0: lossless). Dropped check legs retransmit after \
             the retry timeout; see $(b,--adaptive).")
  in
  let serve_inflate =
    Arg.(
      value & opt float 1.0
      & info [ "inflate" ] ~docv:"F"
          ~doc:
            "Latency inflation factor of every database site's incoming \
             link (default 1: no inflation). Factors at or beyond the \
             gray-slowness ratio make delivered check legs count as slow \
             for AUTO's gray-site detection.")
  in
  let serve_flap =
    Arg.(
      value & opt float 0.0
      & info [ "flap-ms" ] ~docv:"PERIOD"
          ~doc:
            "Flap every database site with the given period in simulated \
             milliseconds (down 30% of each period), over the whole \
             stream. 0 disables flapping (the default).")
  in
  let serve_adaptive =
    Arg.(
      value & flag
      & info [ "adaptive" ]
          ~doc:
            "Use telemetry-driven adaptive retry timeouts instead of the \
             static default: each destination's timeout is clamp(lo, k x \
             observed check latency, hi), falling back to the ceiling for \
             sites with no observations yet.")
  in
  let dashboard =
    Arg.(
      value & flag
      & info [ "dashboard" ]
          ~doc:
            "Replay the workload as a live TTY dashboard after the tables: \
             one frame per query completion with admitted/completed \
             progress, cache hit rates, message counts and latency \
             quantiles. When stdout is not a terminal only the final \
             (exact) frame is printed, so the flag is CI-safe.")
  in
  let serve_trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace_event file of the whole workload to FILE: \
             every task and transfer carries its query's trace id, and flow \
             events draw the causal edges across sites.")
  in
  let term =
    with_logs
      Term.(
        ret
          (const serve $ queries $ arrival $ cache_mb $ window $ deadline
         $ queue_limit $ shed_policy $ strategy $ data_arg $ synthetic
         $ seed_arg $ sweep_flag $ samples $ jobs $ serve_drop
         $ serve_inflate $ serve_flap $ serve_adaptive $ json_arg $ dashboard
         $ store_arg $ serve_trace_out $ sql))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a multi-query workload through the serve engine: shared \
          simulated system, cross-query GOid/extent and verdict caching, \
          check batching, and overload controls (deadline budgets, bounded \
          admission with load shedding).")
    term

(* ---- metrics ---- *)

let metrics queries arrival strategy data synthetic seed store sql =
  let module Serve = Msdq_serve.Serve in
  if queries < 1 then begin
    Format.eprintf "--queries must be >= 1@.";
    exit 1
  end;
  if arrival <= 0.0 || Float.is_nan arrival then begin
    Format.eprintf "--arrival must be a positive rate@.";
    exit 1
  end;
  let fed = federation_of ~data ~synthetic ~seed in
  let src = match sql with Some s -> s | None -> Paper_example.q1 in
  let analysis = analyze_or_exit fed src in
  let inter_us = 1e6 /. arrival in
  let jobs_list =
    List.init queries (fun i ->
        {
          Serve.strategy;
          analysis;
          arrival = Msdq_simkit.Time.us (float_of_int i *. inter_us);
          deadline = None;
        })
  in
  let cfg =
    {
      Serve.default_config with
      Serve.options = { Strategy.default_options with Strategy.telemetry = true };
    }
  in
  let out =
    try Serve.run cfg fed jobs_list
    with Invalid_argument msg ->
      Format.eprintf "%s@." msg;
      exit 1
  in
  let fresh_store () =
    let s = Msdq_telemetry.Store.create () in
    Run_report.record_serve_stats ~store:s out;
    s
  in
  let store =
    match store with
    | None -> None
    | Some path when Sys.file_exists path -> (
      match Msdq_telemetry.Store.load path with
      | Ok old -> Some (Msdq_telemetry.Store.merge old (fresh_store ()))
      | Error msg ->
        Format.eprintf "cannot load %s: %s@." path msg;
        exit 1)
    | Some _ -> Some (fresh_store ())
  in
  print_string (Msdq_telemetry.Openmetrics.render ?store out.Serve.registry);
  `Ok ()

let metrics_cmd =
  let queries =
    Arg.(
      value & opt int 8
      & info [ "n"; "queries" ] ~docv:"N"
          ~doc:"Number of queries in the sampled workload.")
  in
  let arrival =
    Arg.(
      value & opt float 50.0
      & info [ "arrival" ] ~docv:"RATE"
          ~doc:"Arrival rate in queries per simulated second.")
  in
  let strategy =
    Arg.(
      value & opt strategy_conv Strategy.Bl
      & info [ "s"; "strategy" ] ~docv:"STRATEGY"
          ~doc:"Strategy for every query in the stream. Default: BL.")
  in
  let synthetic =
    Arg.(
      value & flag
      & info [ "synthetic" ]
          ~doc:"Sample a generated synthetic federation instead of the demo.")
  in
  let sql =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"QUERY"
          ~doc:"SQL/X query repeated by the stream. Default: the demo's Q1.")
  in
  let term =
    with_logs
      Term.(
        ret
          (const metrics $ queries $ arrival $ strategy $ data_arg $ synthetic
         $ seed_arg $ store_arg $ sql))
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run a telemetry-enabled serve workload and print its metrics \
          registry in the OpenMetrics text format (counters, gauges and \
          latency histograms with cumulative buckets). With $(b,--store) \
          the persistent statistics store is merged in and exposed as \
          msdq_store_* gauges.")
    term

(* ---- params ---- *)

let params () =
  Format.printf "Table 1 — system parameters:@.%a@.@." Cost.pp Cost.default;
  Format.printf "Table 2 — database and query parameters:@.%a@." Params.pp_ranges
    Params.default;
  `Ok ()

let params_cmd =
  Cmd.v
    (Cmd.info "params" ~doc:"Print the paper's parameter tables.")
    (with_logs Term.(ret (const params $ const ())))

(* ---- generate ---- *)

let generate seed n_db n_classes n_entities =
  let cfg =
    { Synth.default with Synth.seed; n_db; n_classes; n_entities }
  in
  let fed = Synth.generate cfg in
  Format.printf "%a@.@." Federation.pp fed;
  Format.printf "global schema:@.%a@." Global_schema.pp (Federation.global_schema fed);
  let conflicts =
    Isomerism.check_consistency (Federation.global_schema fed)
      ~databases:(Federation.databases fed) (Federation.goids fed)
  in
  Format.printf "@.consistency check: %d conflicts@." (List.length conflicts);
  let rng = Rng.create ~seed in
  let q = Synth.random_query rng cfg ~disjunctive:false in
  Format.printf "@.a random query over it:@.  %a@." Ast.pp q;
  `Ok ()

let generate_cmd =
  let n_db = Arg.(value & opt int 3 & info [ "databases" ] ~doc:"Component databases.") in
  let n_classes = Arg.(value & opt int 3 & info [ "classes" ] ~doc:"Chain length.") in
  let n_entities =
    Arg.(value & opt int 24 & info [ "entities" ] ~doc:"Entities per class.")
  in
  let term =
    with_logs
      Term.(ret (const generate $ seed_arg $ n_db $ n_classes $ n_entities))
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate and summarize a synthetic federation.")
    term

(* ---- plan ---- *)

let plan data synthetic seed objective sql =
  let fed = federation_of ~data ~synthetic ~seed in
  let analysis = analyze_or_exit fed sql in
  let objective =
    match objective with
    | "total" -> Planner.Total_time
    | "response" -> Planner.Response_time
    | other ->
      Format.eprintf "unknown objective %S (total|response)@." other;
      exit 1
  in
  let chosen, predictions = Planner.choose ~objective fed analysis in
  Format.printf "query: %a@.@." Ast.pp analysis.Analysis.query;
  List.iter (fun p -> Format.printf "%a@." Planner.pp_prediction p) predictions;
  Format.printf "@.recommended strategy: %s@.@." (Strategy.to_string chosen);
  (* Run the recommendation so the user sees the actual outcome. *)
  let answer, metrics = Strategy.run chosen fed analysis in
  Format.printf "%a@.%a@." Answer.pp answer Strategy.pp_metrics metrics;
  `Ok ()

let plan_cmd =
  let sql =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"QUERY" ~doc:"SQL/X query string.")
  in
  let synthetic =
    Arg.(
      value & flag
      & info [ "synthetic" ] ~doc:"Plan against a generated synthetic federation.")
  in
  let objective =
    Arg.(
      value & opt string "total"
      & info [ "objective" ] ~docv:"OBJ"
          ~doc:"Optimization objective: total or response.")
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:"Profile the federation, predict each strategy's cost and run the              recommended one.")
    (with_logs
       Term.(ret (const plan $ data_arg $ synthetic $ seed_arg $ objective $ sql)))

(* ---- validate ---- *)

let validate_src = Logs.Src.create "msdq.validate" ~doc:"strategy cross-checks"

module Validate_log = (val Logs.src_log validate_src : Logs.LOG)

let validate seeds progress =
  let registry = Msdq_obs.Metrics.create () in
  let outcomes outcome =
    Msdq_obs.Metrics.counter registry
      ~labels:[ ("outcome", outcome) ]
      "msdq_validate_federations_total"
  in
  let checked = ref 0 and skipped = ref 0 in
  let failures = ref [] in
  for seed = 0 to seeds - 1 do
    let cfg = { Synth.default with Synth.seed } in
    let fed = Synth.generate cfg in
    let schema = Global_schema.schema (Federation.global_schema fed) in
    (* a random path may name an attribute no constituent kept; retry a few
       query draws before skipping the federation *)
    let rec try_query attempt =
      if attempt >= 10 then None
      else
        let rng = Rng.create ~seed:(seed + (attempt * 7919)) in
        let q = Synth.random_query rng cfg ~disjunctive:(seed mod 3 = 0) in
        match Analysis.analyze schema q with
        | analysis -> Some analysis
        | exception Analysis.Error _ -> try_query (attempt + 1)
    in
    (match try_query 0 with
    | None ->
      incr skipped;
      Msdq_obs.Metrics.inc (outcomes "skipped") 1
    | Some analysis ->
      incr checked;
      Msdq_obs.Metrics.inc (outcomes "checked") 1;
      let ca, _ = Strategy.run Strategy.Ca fed analysis in
      let bl, _ = Strategy.run Strategy.Bl fed analysis in
      let pl, _ = Strategy.run Strategy.Pl fed analysis in
      let options =
        { Strategy.default_options with Strategy.deep_certify = true }
      in
      let deep, _ = Strategy.run ~options Strategy.Bl fed analysis in
      let note name ok = if not ok then failures := (seed, name) :: !failures in
      note "BL = PL" (Answer.same_statuses bl pl);
      note "CA subsumes BL" (Answer.subsumes ~strong:ca ~weak:bl);
      note "deep BL = CA" (Answer.same_statuses ca deep));
    Validate_log.info (fun m ->
        m "seed %d/%d: %d checked, %d skipped, %d failures" (seed + 1) seeds
          !checked !skipped (List.length !failures));
    if progress then begin
      Format.eprintf "validate: %d/%d federations\r%!" (seed + 1) seeds;
      if seed + 1 = seeds then Format.eprintf "@."
    end
  done;
  Format.printf "validated %d random federations (%d skipped)@." !checked !skipped;
  if !failures = [] then begin
    Format.printf "all invariants hold@.";
    `Ok ()
  end
  else begin
    List.iter
      (fun (seed, name) -> Format.printf "FAILED seed %d: %s@." seed name)
      !failures;
    exit 1
  end

let validate_cmd =
  let seeds =
    Arg.(value & opt int 50 & info [ "seeds" ] ~doc:"Number of random federations.")
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Cross-check strategy answers on random federations.")
    (with_logs Term.(ret (const validate $ seeds $ progress_arg)))

let main_cmd =
  let doc =
    "query execution strategies for missing data in distributed heterogeneous \
     object databases (Koh & Chen, ICDCS 1996)"
  in
  Cmd.group
    (Cmd.info "msdq" ~version:"1.0.0" ~doc)
    [
      demo_cmd;
      query_cmd;
      plan_cmd;
      experiment_cmd;
      serve_cmd;
      metrics_cmd;
      params_cmd;
      generate_cmd;
      validate_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
